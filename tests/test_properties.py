"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import cdf_points, classify_distribution, mean, stdev
from repro.core.validation import percentile
from repro.metrics.comparison import pearson_correlation
from repro.metrics.visual import VisualProgress
from repro.netsim.bandwidth import BandwidthModel, SharedLink
from repro.rng import SeededRNG
from repro.web.corpus import CorpusGenerator

positive_floats = st.floats(min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False)
samples = st.lists(positive_floats, min_size=1, max_size=60)


# -- statistics helpers --------------------------------------------------------------


@given(samples)
def test_percentile_within_sample_bounds(values):
    assert min(values) - 1e-9 <= percentile(values, 25.0) <= max(values) + 1e-9
    assert min(values) - 1e-9 <= percentile(values, 75.0) <= max(values) + 1e-9
    assert percentile(values, 25.0) <= percentile(values, 75.0) + 1e-9


@given(samples)
def test_percentile_endpoints(values):
    assert percentile(values, 0.0) == min(values)
    assert percentile(values, 100.0) == max(values)


@given(samples)
def test_mean_and_stdev_bounds(values):
    mu = mean(values)
    assert min(values) - 1e-9 <= mu <= max(values) + 1e-9
    assert stdev(values) >= 0.0
    assert stdev(values) <= (max(values) - min(values)) + 1e-9


@given(samples)
def test_cdf_points_properties(values):
    points = cdf_points(values)
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    assert xs == sorted(xs)
    assert ys == sorted(ys)
    assert abs(ys[-1] - 1.0) < 1e-12
    assert len(points) == len(values)


@given(st.lists(positive_floats, min_size=2, max_size=40))
def test_classification_always_returns_known_shape(values):
    shape = classify_distribution("v", values)
    assert shape.shape in ("tight", "spread", "multimodal")
    assert shape.n == len(values)
    assert shape.spread >= 0.0


@given(st.lists(st.tuples(positive_floats, positive_floats), min_size=2, max_size=40))
def test_pearson_correlation_bounded(pairs):
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    if len(set(xs)) < 2 or len(set(ys)) < 2:
        return
    value = pearson_correlation(xs, ys)
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


# -- visual progress -------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30))
def test_visual_progress_monotone_queries(levels):
    levels = sorted(levels)
    points = tuple((float(index), level) for index, level in enumerate(levels))
    progress = VisualProgress(points=points)
    previous = -1.0
    for t in range(len(levels) + 2):
        value = progress.completeness_at(float(t))
        assert value >= previous - 1e-12
        previous = value
    assert progress.area_above_curve() >= -1e-9


# -- shared link -----------------------------------------------------------------------


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=10.0),
                          st.integers(min_value=1, max_value=500_000)),
                min_size=1, max_size=30))
def test_shared_link_never_creates_capacity(transfers):
    link = SharedLink(bandwidth=BandwidthModel(downlink_bps=8_000_000, uplink_bps=1_000_000))
    total_bytes = 0
    last = 0.0
    for first_byte_at, size in transfers:
        total_bytes += size
        last = max(last, link.schedule(first_byte_at, size))
    # The link cannot finish before the time needed to push every byte through.
    assert last + 1e-9 >= total_bytes / link.bandwidth.downlink_bytes_per_second
    assert link.bytes_delivered == total_bytes


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25)
def test_rng_fork_determinism(seed):
    a = SeededRNG(seed)
    b = SeededRNG(seed)
    assert a.fork("x").random() == b.fork("x").random()
    assert a.random() == b.random()


# -- corpus ------------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=15, deadline=None)
def test_generated_pages_always_valid(index):
    page = CorpusGenerator(seed=99).generate_page(f"prop-site-{index}")
    page.validate()
    assert page.object_count >= 10
    assert page.total_bytes > 0
    assert page.viewport.allocated_pixels <= page.viewport.total_pixels
    assert len(page.origins()) >= 1
    # Exactly one root document.
    assert sum(1 for obj in page.iter_objects() if obj.is_root) == 1
