"""Tests for the discrete-event simulation core."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.netsim.events import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_last_event():
    sim = Simulator()
    sim.schedule(5.5, lambda: None)
    assert sim.run() == pytest.approx(5.5)
    assert sim.now == pytest.approx(5.5)


def test_simultaneous_events_fifo():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(1.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2]


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == pytest.approx(2.0)


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_run_until_bound():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("early"))
    sim.schedule(10.0, lambda: fired.append("late"))
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == pytest.approx(5.0)
    assert sim.pending == 1


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_advance():
    sim = Simulator()
    fired = []
    sim.schedule(0.5, lambda: fired.append("x"))
    sim.advance(1.0)
    assert fired == ["x"]
    assert sim.now == pytest.approx(1.0)


def test_advance_backwards_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.advance(-0.1)


def test_max_events_guard():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.processed == 5


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(2.0, lambda: fired.append("x"))
    sim.run()
    assert sim.now == pytest.approx(2.0)
    assert fired == ["x"]


def test_max_events_budget_is_exact():
    """Exactly max_events events may run; the budget check fires before the
    (max_events + 1)-th event executes, not after."""
    sim = Simulator()
    fired = []
    for index in range(5):
        sim.schedule(float(index), lambda i=index: fired.append(i))
    # A queue of exactly max_events drains without raising.
    assert sim.run(max_events=5) == pytest.approx(4.0)
    assert fired == [0, 1, 2, 3, 4]

    sim = Simulator()
    for index in range(6):
        sim.schedule(float(index), lambda i=index: fired.append(10 + i))
    with pytest.raises(SimulationError):
        sim.run(max_events=5)
    # The sixth event never executed.
    assert fired[5:] == [10, 11, 12, 13, 14]


def test_pending_counter_tracks_schedule_cancel_and_run():
    sim = Simulator()
    handles = [sim.schedule(1.0 + i, lambda: None) for i in range(4)]
    assert sim.pending == 4
    handles[0].cancel()
    handles[0].cancel()  # idempotent
    assert sim.pending == 3
    sim.run(until=2.5)
    assert sim.pending == 2
    handles[1].cancel()  # fired already: a late cancel must not double-count
    assert sim.pending == 2
    sim.run()
    assert sim.pending == 0
