"""Cross-scheme guard tests: mixing versioned RNG schemes is an error.

Every artifact (capture-cache entry, captured video, campaign result)
records the scheme that produced it; these tests pin that combining
artifacts across schemes raises :class:`RNGSchemeMismatchError` with both
scheme names in the message, and that the error is escapable only through
the explicit events (``CaptureCache.clear()``, new goldens).
"""

from __future__ import annotations

import pytest

from repro.capture.video import Video
from repro.capture.webpeg import CaptureCache, CaptureSettings, Webpeg
from repro.config import ReproConfig
from repro.core.campaign import CampaignConfig, CampaignRunner
from repro.core.experiment import TimelineExperiment
from repro.errors import (
    CaptureError,
    ConfigurationError,
    RNGSchemeMismatchError,
    VideoError,
)
from repro.rng import SCHEME_SHA256_V1, SCHEME_SPLITMIX64_V2

#: Matches tests/conftest.py's TEST_SEED (not imported: the name `conftest`
#: is ambiguous when tests/ and benchmarks/ are collected together).
TEST_SEED = 77


@pytest.fixture()
def private_cache():
    """A fresh, unpinned capture cache (never the process-wide one)."""
    return CaptureCache(max_entries=8)


def _tool(scheme, cache, settings):
    return Webpeg(settings=settings, seed=TEST_SEED, cache=cache, rng_scheme=scheme)


def test_cache_pins_to_first_scheme_and_rejects_the_other(page, capture_settings, private_cache):
    _tool(SCHEME_SHA256_V1, private_cache, capture_settings).capture(page, configuration="h2")
    assert private_cache.scheme == SCHEME_SHA256_V1
    with pytest.raises(RNGSchemeMismatchError) as excinfo:
        _tool(SCHEME_SPLITMIX64_V2, private_cache, capture_settings).capture(page, configuration="h2")
    message = str(excinfo.value)
    assert SCHEME_SHA256_V1 in message and SCHEME_SPLITMIX64_V2 in message
    assert "clear()" in message


def test_cache_clear_unpins_the_scheme(page, capture_settings, private_cache):
    _tool(SCHEME_SHA256_V1, private_cache, capture_settings).capture(page, configuration="h2")
    private_cache.clear()
    assert private_cache.scheme is None
    report = _tool(SCHEME_SPLITMIX64_V2, private_cache, capture_settings).capture(
        page, configuration="h2"
    )
    assert report.rng_scheme == SCHEME_SPLITMIX64_V2
    assert private_cache.scheme == SCHEME_SPLITMIX64_V2


def test_scheme_distinguishes_cache_keys(page, capture_settings):
    tool_v1 = _tool(SCHEME_SHA256_V1, None, capture_settings)
    tool_v2 = _tool(SCHEME_SPLITMIX64_V2, None, capture_settings)
    assert tool_v1._cache_key(page, "h2") != tool_v2._cache_key(page, "h2")


def test_capture_artifacts_record_their_scheme(page, capture_settings, private_cache):
    report = _tool(SCHEME_SPLITMIX64_V2, private_cache, capture_settings).capture(
        page, configuration="h2"
    )
    assert report.rng_scheme == SCHEME_SPLITMIX64_V2
    assert report.video.rng_scheme == SCHEME_SPLITMIX64_V2
    # Cache hits hand out copies that keep the recorded scheme.
    hit = _tool(SCHEME_SPLITMIX64_V2, private_cache, capture_settings).capture(
        page, configuration="h2"
    )
    assert private_cache.hits == 1
    assert hit.video.rng_scheme == SCHEME_SPLITMIX64_V2


def test_campaign_rejects_videos_from_another_scheme(pages, capture_settings):
    videos = [
        _tool(SCHEME_SHA256_V1, None, capture_settings).capture(p, configuration="h2").video
        for p in pages
    ]
    experiment = TimelineExperiment(experiment_id="mixed", videos=videos)
    config = CampaignConfig(
        campaign_id="mixed", participant_count=10, seed=TEST_SEED,
        rng_scheme=SCHEME_SPLITMIX64_V2,
    )
    with pytest.raises(RNGSchemeMismatchError) as excinfo:
        CampaignRunner(config).run_timeline(experiment)
    message = str(excinfo.value)
    assert SCHEME_SHA256_V1 in message and SCHEME_SPLITMIX64_V2 in message


def test_campaign_accepts_videos_from_its_own_scheme(pages, capture_settings):
    videos = [
        _tool(SCHEME_SPLITMIX64_V2, None, capture_settings).capture(p, configuration="h2").video
        for p in pages
    ]
    experiment = TimelineExperiment(experiment_id="v2-only", videos=videos)
    config = CampaignConfig(
        campaign_id="v2-only", participant_count=10, seed=TEST_SEED,
        rng_scheme=SCHEME_SPLITMIX64_V2,
    )
    result = CampaignRunner(config).run_timeline(experiment)
    assert result.rng_scheme == SCHEME_SPLITMIX64_V2
    assert result.config.rng_scheme == SCHEME_SPLITMIX64_V2


def test_spliced_video_rejects_mixed_scheme_sides(video):
    from repro.capture.video import SplicedVideo

    other = Video(
        video_id=video.video_id + "-v2",
        site_id=video.site_id,
        configuration=video.configuration,
        frames=video.frames,
        load_result=video.load_result,
        rng_scheme=SCHEME_SPLITMIX64_V2,
    )
    spliced = SplicedVideo(
        video_id="mixed", left=video, right=other, left_label="a", right_label="b"
    )
    with pytest.raises(VideoError, match="mixes RNG schemes"):
        spliced.rng_scheme


def test_config_objects_validate_schemes():
    with pytest.raises(ConfigurationError):
        ReproConfig(rng_scheme="md5-v0")
    with pytest.raises(ConfigurationError):
        CampaignConfig(campaign_id="x", participant_count=1, rng_scheme="md5-v0")
    with pytest.raises(ConfigurationError):
        Webpeg(rng_scheme="md5-v0")
    with pytest.raises(ConfigurationError):
        CaptureCache(scheme="md5-v0")
    assert ReproConfig().rng_scheme == SCHEME_SHA256_V1


def test_cache_constructor_still_validates_entries():
    with pytest.raises(CaptureError):
        CaptureCache(max_entries=0)
