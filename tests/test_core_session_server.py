"""Tests for participant sessions and the in-process backend."""

from __future__ import annotations

import pytest

from repro.core.server import BrokenVideoRegistry, CaptchaGate, EyeorgServer, TaskAssigner
from repro.core.session import ParticipantSession
from repro.crowd.participant import ParticipantClass, generate_participant
from repro.errors import CampaignError, ExperimentError
from repro.rng import RNG_SCHEMES, SCHEME_SPLITMIX64_V2, SeededRNG


@pytest.fixture()
def participant():
    return generate_participant("sess-1", ParticipantClass.PAID, "crowdflower", SeededRNG(51))


# -- sessions ----------------------------------------------------------------------


def test_timeline_session_produces_one_response_per_video(participant, timeline_experiment):
    session = ParticipantSession(participant, SeededRNG(1))
    result = session.run_timeline(timeline_experiment.videos[:3])
    assert len(result.responses) == 3
    assert result.telemetry.videos_assigned == 3
    assert result.telemetry.time_on_site_seconds > 0
    for response in result.responses:
        assert response.participant_id == participant.participant_id
        assert 0.0 <= response.submitted_time


def test_timeline_session_requires_videos(participant):
    with pytest.raises(ExperimentError):
        ParticipantSession(participant, SeededRNG(1)).run_timeline([])


def test_ab_session_produces_choices(participant, ab_experiment):
    session = ParticipantSession(participant, SeededRNG(2))
    result = session.run_ab(ab_experiment.pairs[:3])
    assert len(result.responses) == 3
    for response in result.responses:
        assert response.choice in ("left", "right", "no_difference")
        assert response.choice_label in ("h1", "h2", "no_difference")


def test_ab_session_requires_pairs(participant):
    with pytest.raises(ExperimentError):
        ParticipantSession(participant, SeededRNG(1)).run_ab([])


def test_session_control_telemetry(participant, ab_experiment):
    control = ab_experiment.make_control_pair(ab_experiment.pairs[0], SeededRNG(3), index=0)
    result = ParticipantSession(participant, SeededRNG(3)).run_ab([control])
    assert result.telemetry.controls_seen == 1
    assert result.responses[0].is_control


def test_session_telemetry_control_pass_rate(participant):
    from repro.core.session import SessionTelemetry

    telemetry = SessionTelemetry(participant_id="x", controls_seen=0)
    assert telemetry.control_pass_rate == 1.0
    telemetry = SessionTelemetry(participant_id="x", controls_seen=4, controls_passed=3)
    assert telemetry.control_pass_rate == pytest.approx(0.75)
    assert not telemetry.skipped_any_video


# -- captcha gate ------------------------------------------------------------------


def test_captcha_admits_humans(participant):
    gate = CaptchaGate()
    assert gate.verify(participant, SeededRNG(1), is_bot=False)
    assert gate.attempts == 1
    assert gate.rejected == 0


def test_captcha_rejects_most_bots(participant):
    gate = CaptchaGate()
    rejections = sum(
        0 if gate.verify(participant, SeededRNG(i), is_bot=True) else 1 for i in range(50)
    )
    assert rejections >= 45


# -- task assigner -----------------------------------------------------------------


def test_assigner_balances_coverage(timeline_experiment):
    assigner = TaskAssigner(timeline_experiment.videos, per_participant=2, rng=SeededRNG(4))
    for index in range(10):
        participant = generate_participant(f"a{index}", ParticipantClass.PAID, "crowdflower", SeededRNG(index))
        tasks = assigner.assign(participant)
        assert len(tasks) == 2
        assert len({t.video_id for t in tasks}) == 2
    counts = assigner.assignments_per_task.values()
    assert max(counts) - min(counts) <= 1


def test_assigner_caps_at_pool_size(timeline_experiment):
    assigner = TaskAssigner(timeline_experiment.videos, per_participant=100, rng=SeededRNG(4))
    participant = generate_participant("big", ParticipantClass.PAID, "crowdflower", SeededRNG(1))
    assert len(assigner.assign(participant)) == len(timeline_experiment.videos)


def test_assigner_rejects_empty_pool():
    with pytest.raises(CampaignError):
        TaskAssigner([], per_participant=2)


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_assigner_balances_coverage_under_both_schemes(timeline_experiment, scheme):
    """The coverage invariant holds per scheme (only v1 was exercised before)."""
    assigner = TaskAssigner(timeline_experiment.videos, per_participant=2,
                            rng=SeededRNG(4, scheme))
    for index in range(10):
        participant = generate_participant(
            f"s{index}", ParticipantClass.PAID, "crowdflower", SeededRNG(index, scheme)
        )
        tasks = assigner.assign(participant)
        assert len(tasks) == 2
        assert len({t.video_id for t in tasks}) == 2
    counts = assigner.assignments_per_task
    assert sum(counts.values()) == 20
    assert max(counts.values()) - min(counts.values()) <= 1


def test_assigner_is_deterministic_but_scheme_dependent(timeline_experiment):
    """Identical inputs reproduce assignments exactly; schemes reorder them."""
    def assignment_ids(scheme):
        assigner = TaskAssigner(timeline_experiment.videos, per_participant=3,
                                rng=SeededRNG(4, scheme))
        ids = []
        for index in range(6):
            participant = generate_participant(
                f"d{index}", ParticipantClass.PAID, "crowdflower", SeededRNG(index, scheme)
            )
            ids.append([t.video_id for t in assigner.assign(participant)])
        return ids

    for scheme in RNG_SCHEMES:
        assert assignment_ids(scheme) == assignment_ids(scheme)
    assert assignment_ids(RNG_SCHEMES[0]) != assignment_ids(SCHEME_SPLITMIX64_V2)


# -- broken-video registry -----------------------------------------------------------


def test_broken_video_banned_after_five_flags(video):
    registry = BrokenVideoRegistry()
    for index in range(4):
        assert not registry.flag(video, f"worker-{index}")
    assert registry.flag(video, "worker-4")
    assert video.video_id in registry.banned
    assert registry.flag_count(video.video_id) == 5
    video.banned = False
    video.flagged_by.clear()


def test_duplicate_flags_not_counted(video):
    registry = BrokenVideoRegistry()
    for _ in range(10):
        registry.flag(video, "same-worker")
    assert registry.flag_count(video.video_id) == 1
    assert video.video_id not in registry.banned
    video.banned = False
    video.flagged_by.clear()


def test_broken_video_registry_with_v2_scheme_capture(page, capture_settings):
    """The registry ban flow also covers videos captured under splitmix64-v2."""
    from repro.capture.webpeg import DEFAULT_CAPTURE_CACHE, Webpeg

    DEFAULT_CAPTURE_CACHE.clear()
    try:
        tool = Webpeg(settings=capture_settings, seed=77, rng_scheme=SCHEME_SPLITMIX64_V2)
        v2_video = tool.capture(page, configuration="h2").video
    finally:
        DEFAULT_CAPTURE_CACHE.clear()
    assert v2_video.rng_scheme == SCHEME_SPLITMIX64_V2
    registry = BrokenVideoRegistry()
    for index in range(4):
        assert not registry.flag(v2_video, f"worker-{index}")
    assert registry.flag(v2_video, "worker-4")
    assert v2_video.video_id in registry.banned
    assert registry.flag_count(v2_video.video_id) == 5


# -- server ------------------------------------------------------------------------


def test_server_requires_admission_before_tasks(timeline_experiment, participant):
    server = EyeorgServer(timeline_experiment, videos_per_participant=2, seed=9)
    with pytest.raises(CampaignError):
        server.assign_tasks(participant)
    assert server.admit(participant)
    tasks = server.assign_tasks(participant)
    assert len(tasks) == 2
    assert participant.participant_id in server.admitted
