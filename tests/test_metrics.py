"""Tests for visual progress and the PLT metrics."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.metrics.comparison import compare_metrics, delta_buckets, metric_delta, pearson_correlation
from repro.metrics.plt import METRIC_NAMES, PLTMetrics, metrics_from_load, metrics_from_video, speed_index
from repro.metrics.visual import VisualProgress, progress_from_frames, progress_from_timeline


# -- visual progress ----------------------------------------------------------------


def test_visual_progress_requires_points():
    with pytest.raises(AnalysisError):
        VisualProgress(points=())


def test_visual_progress_must_be_non_decreasing():
    with pytest.raises(AnalysisError):
        VisualProgress(points=((0.0, 0.5), (1.0, 0.2)))


def test_area_above_curve_simple():
    progress = VisualProgress(points=((0.0, 0.0), (1.0, 0.5), (2.0, 1.0)))
    # 1s at completeness 0 + 1s at completeness 0.5 => area 1.5
    assert progress.area_above_curve() == pytest.approx(1.5)
    assert speed_index(progress) == pytest.approx(1.5)


def test_time_to_completeness():
    progress = VisualProgress(points=((0.0, 0.0), (1.0, 0.5), (2.0, 1.0)))
    assert progress.time_to_completeness(0.5) == pytest.approx(1.0)
    assert progress.time_to_completeness(1.0) == pytest.approx(2.0)
    with pytest.raises(AnalysisError):
        progress.time_to_completeness(0.0)


def test_progress_from_timeline_and_frames_agree(load_result, video):
    from_timeline = progress_from_timeline(load_result.render_timeline)
    from_frames = progress_from_frames(video.frames)
    assert from_timeline.points[-1][1] == pytest.approx(1.0)
    assert from_frames.points[-1][1] == pytest.approx(1.0)


# -- PLT metrics --------------------------------------------------------------------


def test_metrics_from_load_ordering(load_result):
    metrics = metrics_from_load(load_result)
    assert metrics.firstvisualchange <= metrics.lastvisualchange
    assert metrics.firstvisualchange <= metrics.speedindex <= metrics.lastvisualchange
    assert metrics.onload > 0


def test_metrics_from_video_matches_load(video):
    from_video = metrics_from_video(video)
    from_load = metrics_from_load(video.load_result)
    assert from_video.onload == pytest.approx(from_load.onload)
    assert from_video.firstvisualchange == pytest.approx(from_load.firstvisualchange)
    assert from_video.lastvisualchange == pytest.approx(from_load.lastvisualchange)
    # SpeedIndex from sampled frames is a staircase approximation.
    assert from_video.speedindex == pytest.approx(from_load.speedindex, abs=0.25)


def test_metrics_get_and_dict(load_result):
    metrics = metrics_from_load(load_result)
    as_dict = metrics.as_dict()
    assert set(as_dict) == set(METRIC_NAMES)
    for name in METRIC_NAMES:
        assert metrics.get(name) == as_dict[name]
    with pytest.raises(AnalysisError):
        metrics.get("time-to-interactive")


# -- comparisons --------------------------------------------------------------------


def test_pearson_correlation_perfect():
    assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
    assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)


def test_pearson_correlation_errors():
    with pytest.raises(AnalysisError):
        pearson_correlation([1], [2])
    with pytest.raises(AnalysisError):
        pearson_correlation([1, 2], [1, 2, 3])
    with pytest.raises(AnalysisError):
        pearson_correlation([1, 1, 1], [1, 2, 3])


def test_metric_delta():
    a = PLTMetrics(onload=2.0, speedindex=1.5, firstvisualchange=1.0, lastvisualchange=3.0)
    b = PLTMetrics(onload=1.4, speedindex=1.2, firstvisualchange=0.9, lastvisualchange=3.5)
    assert metric_delta(a, b, "onload") == pytest.approx(0.6)
    assert metric_delta(a, b, "lastvisualchange") == pytest.approx(0.5)


def test_delta_buckets_assignment():
    buckets = delta_buckets([90, 120, 480, 1650], edges_ms=(100, 500, 900, 1300, 1700))
    mapping = {centre: indices for centre, indices in buckets}
    assert mapping[100] == [0, 1]
    assert mapping[500] == [2]
    assert mapping[1700] == [3]
    with pytest.raises(AnalysisError):
        delta_buckets([1.0], edges_ms=())


def test_compare_metrics_structure():
    uplt = {"a": 2.0, "b": 3.0, "c": 4.0}
    metrics = {
        "a": PLTMetrics(onload=2.2, speedindex=1.8, firstvisualchange=1.0, lastvisualchange=4.0),
        "b": PLTMetrics(onload=3.1, speedindex=2.6, firstvisualchange=1.5, lastvisualchange=6.0),
        "c": PLTMetrics(onload=4.3, speedindex=3.3, firstvisualchange=2.0, lastvisualchange=8.0),
    }
    comparison = compare_metrics(uplt, metrics)
    assert set(comparison.correlations) == set(METRIC_NAMES)
    assert comparison.correlations["onload"] > 0.99
    assert all(len(diffs) == 3 for diffs in comparison.differences.values())
    assert 0.0 <= comparison.within_100ms["onload"] <= 1.0
    assert comparison.overestimate_fraction["lastvisualchange"] == pytest.approx(1.0)


def test_compare_metrics_requires_overlap():
    with pytest.raises(AnalysisError):
        compare_metrics({"a": 1.0}, {"b": PLTMetrics(1, 1, 1, 1)})
