"""Tests for HAR construction."""

from __future__ import annotations

import json

import pytest

from repro.httpsim.har import HARArchive


def test_har_structure(load_result):
    har = load_result.har
    data = har.to_dict()
    assert data["log"]["version"] == "1.2"
    assert data["log"]["creator"]["name"] == "webpeg"
    assert len(data["log"]["pages"]) == 1
    page_entry = data["log"]["pages"][0]
    assert page_entry["pageTimings"]["onLoad"] == pytest.approx(load_result.onload * 1000.0, rel=1e-3)
    assert page_entry["_protocol"] == load_result.protocol


def test_har_entry_count_matches_fetches(load_result):
    har = load_result.har
    assert har.entry_count == len(load_result.fetch_records)
    assert len(har.to_dict()["log"]["entries"]) == har.entry_count


def test_har_json_round_trip(load_result):
    parsed = json.loads(load_result.har.to_json())
    assert parsed["log"]["version"] == "1.2"


def test_har_completion_times_positive(load_result):
    times = load_result.har.completion_times()
    assert times
    assert all(value >= 0 for value in times.values())


def test_har_entries_for_origin(load_result, page):
    har = load_result.har
    root_origin = page.root.origin
    entries = har.entries_for_origin(root_origin)
    assert entries
    assert all(e.request.origin == root_origin for e in entries)


def test_har_total_bytes_positive(load_result):
    assert load_result.har.total_bytes > 0


def test_har_timings_non_negative(load_result):
    for entry in load_result.har.to_dict()["log"]["entries"]:
        timings = entry["timings"]
        assert timings["wait"] >= 0
        assert timings["receive"] >= 0
        assert entry["time"] >= 0


def test_blocked_entries_have_status_zero():
    from repro.adblock.blockers import ghostery
    from repro.browser.browser import Browser
    from repro.browser.preferences import BrowserPreferences
    from repro.web.corpus import CorpusGenerator

    page = CorpusGenerator(seed=5).generate_page("adsite-00007", displays_ads=True)
    prefs = BrowserPreferences(protocol="auto", extensions=[ghostery()])
    result = Browser(preferences=prefs, network_profile="cable-intl", seed=5).load(page)
    assert result.blocked_object_ids
    blocked_entries = [
        e for e in result.har.to_dict()["log"]["entries"] if e["_blocked"]
    ]
    assert blocked_entries
    assert all(e["response"]["status"] == 0 for e in blocked_entries)
