"""Tests for latency and bandwidth models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.netsim.bandwidth import BandwidthModel, SharedLink
from repro.netsim.latency import LatencyModel, origin_latency
from repro.rng import SeededRNG


# -- latency --------------------------------------------------------------------


def test_latency_requires_positive_rtt():
    with pytest.raises(ConfigurationError):
        LatencyModel(base_rtt=0.0)


def test_latency_sample_without_jitter_is_constant(rng):
    model = LatencyModel(base_rtt=0.05, jitter=0.0)
    assert model.sample_rtt(rng) == pytest.approx(0.05)


def test_latency_sample_respects_minimum(rng):
    model = LatencyModel(base_rtt=0.002, jitter=0.05, minimum_rtt=0.001)
    for _ in range(100):
        assert model.sample_rtt(rng) >= 0.001


def test_one_way_is_half_rtt(rng):
    model = LatencyModel(base_rtt=0.08, jitter=0.0)
    assert model.one_way(rng) == pytest.approx(0.04)


def test_scaled_latency():
    model = LatencyModel(base_rtt=0.05, jitter=0.01)
    doubled = model.scaled(2.0)
    assert doubled.base_rtt == pytest.approx(0.10)
    assert doubled.jitter == pytest.approx(0.02)
    with pytest.raises(ConfigurationError):
        model.scaled(0.0)


def test_origin_latency_stable_per_origin(rng):
    base = LatencyModel(base_rtt=0.05, jitter=0.0)
    a1 = origin_latency(base, "cdn.example", rng)
    a2 = origin_latency(base, "cdn.example", rng)
    assert a1.base_rtt == pytest.approx(a2.base_rtt)


def test_origin_latency_bounded(rng):
    base = LatencyModel(base_rtt=0.05, jitter=0.0)
    for index in range(50):
        derived = origin_latency(base, f"origin-{index}.example", rng)
        assert 0.5 * 0.05 <= derived.base_rtt <= 3.0 * 0.05


# -- bandwidth ------------------------------------------------------------------


def test_bandwidth_requires_positive_capacity():
    with pytest.raises(ConfigurationError):
        BandwidthModel(downlink_bps=0, uplink_bps=1)


def test_transfer_time_scales_with_size():
    model = BandwidthModel(downlink_bps=8_000_000, uplink_bps=1_000_000)  # 1 MB/s down
    assert model.transfer_time(1_000_000) == pytest.approx(1.0)
    assert model.transfer_time(500_000) == pytest.approx(0.5)


def test_transfer_time_scales_with_concurrency():
    model = BandwidthModel(downlink_bps=8_000_000, uplink_bps=1_000_000)
    assert model.transfer_time(1_000_000, concurrent=2) == pytest.approx(2.0)


def test_shared_link_fifo_serialises():
    link = SharedLink(bandwidth=BandwidthModel(downlink_bps=8_000_000, uplink_bps=1_000_000))
    first = link.schedule(first_byte_at=0.0, size_bytes=1_000_000)
    second = link.schedule(first_byte_at=0.0, size_bytes=1_000_000)
    assert first == pytest.approx(1.0)
    assert second == pytest.approx(2.0)


def test_shared_link_idles_when_no_data_ready():
    link = SharedLink(bandwidth=BandwidthModel(downlink_bps=8_000_000, uplink_bps=1_000_000))
    link.schedule(first_byte_at=0.0, size_bytes=500_000)
    late = link.schedule(first_byte_at=10.0, size_bytes=500_000)
    assert late == pytest.approx(10.5)


def test_shared_link_preemption_serves_immediately():
    link = SharedLink(bandwidth=BandwidthModel(downlink_bps=8_000_000, uplink_bps=1_000_000))
    link.schedule(first_byte_at=0.0, size_bytes=2_000_000)  # occupies until t=2
    critical = link.schedule(first_byte_at=0.5, size_bytes=100_000, preempt=True)
    assert critical == pytest.approx(0.6)
    # The preempted bytes still pushed the queue horizon back.
    assert link.available_at >= 2.0


def test_shared_link_capacity_conserved():
    link = SharedLink(bandwidth=BandwidthModel(downlink_bps=8_000_000, uplink_bps=1_000_000))
    total = 0
    for _ in range(10):
        total += 300_000
        link.schedule(first_byte_at=0.0, size_bytes=300_000)
    # All data ready at t=0: the last byte cannot arrive before total/rate.
    assert link.available_at == pytest.approx(total / 1_000_000)


def test_shared_link_rejects_negative_sizes():
    link = SharedLink(bandwidth=BandwidthModel(downlink_bps=8_000_000, uplink_bps=1_000_000))
    with pytest.raises(ConfigurationError):
        link.schedule(first_byte_at=0.0, size_bytes=-1)
    with pytest.raises(ConfigurationError):
        link.schedule(first_byte_at=-0.1, size_bytes=10)


def test_average_throughput_reporting():
    link = SharedLink(bandwidth=BandwidthModel(downlink_bps=8_000_000, uplink_bps=1_000_000))
    assert link.average_throughput_bps == 0.0
    link.schedule(first_byte_at=0.0, size_bytes=1_000_000)
    assert link.average_throughput_bps == pytest.approx(8_000_000)
