"""End-to-end integration tests spanning every subsystem.

These follow the exact flow the paper describes: generate sites, capture
page-load videos with webpeg under controlled protocol/extension/network
settings, build timeline and A/B experiments, recruit crowdsourced
participants, run the campaigns, filter the responses, and analyse the
results — asserting the qualitative findings of the evaluation hold.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import (
    agreement_per_pair,
    classify_all_distributions,
    compare_uplt_with_metrics,
    mean_uplt_per_site,
    score_per_site,
    summarise_behaviour,
)
from repro.core.campaign import CampaignConfig, CampaignRunner
from repro.core.experiment import ABExperiment, TimelineExperiment, build_ab_pairs
from repro.capture.webpeg import CaptureSettings, Webpeg, capture_protocol_pair
from repro.metrics.plt import metrics_from_video
from repro.rng import SeededRNG
from repro.web.corpus import CorpusGenerator

SEED = 424242


@pytest.fixture(scope="module")
def full_pipeline():
    """Capture -> experiments -> campaigns for a small but complete study."""
    corpus = CorpusGenerator(seed=SEED)
    pages = corpus.http2_sample(6)
    settings = CaptureSettings(loads_per_site=3, network_profile="cable-intl")

    tool = Webpeg(settings=settings, seed=SEED)
    timeline_videos = []
    metrics_by_site = {}
    h1_videos, h2_videos = {}, {}
    for page in pages:
        pair = capture_protocol_pair(page, settings=settings, seed=SEED)
        h1_videos[page.site_id] = pair["h1"].video
        h2_videos[page.site_id] = pair["h2"].video
        timeline_videos.append(pair["h2"].video)
        metrics_by_site[page.site_id] = metrics_from_video(pair["h2"].video)

    timeline_experiment = TimelineExperiment("e2e-timeline", timeline_videos)
    ab_pairs = build_ab_pairs(h1_videos, h2_videos, "h1", "h2", SeededRNG(SEED))
    ab_experiment = ABExperiment("e2e-ab", ab_pairs)

    timeline_campaign = CampaignRunner(
        CampaignConfig("e2e-timeline", participant_count=60, seed=SEED)
    ).run_timeline(timeline_experiment)
    ab_campaign = CampaignRunner(
        CampaignConfig("e2e-ab", participant_count=60, seed=SEED)
    ).run_ab(ab_experiment)
    return {
        "pages": pages,
        "metrics": metrics_by_site,
        "timeline": timeline_campaign,
        "ab": ab_campaign,
    }


def test_every_video_received_responses(full_pipeline):
    dataset = full_pipeline["timeline"].raw_dataset
    assert len(dataset.video_ids()) == 6
    for video_id in dataset.video_ids():
        assert len(dataset.responses_for_video(video_id)) >= 10


def test_filtering_drops_a_reasonable_fraction(full_pipeline):
    for campaign in (full_pipeline["timeline"], full_pipeline["ab"]):
        assert 0.0 <= campaign.filter_report.drop_fraction <= 0.5


def test_uplt_lies_within_video_bounds(full_pipeline):
    uplt = mean_uplt_per_site(full_pipeline["timeline"].clean_dataset)
    metrics = full_pipeline["metrics"]
    for site, value in uplt.items():
        assert 0.0 < value
        # Mean perceived PLT never exceeds the last visual change by much.
        assert value <= metrics[site].lastvisualchange + 3.0


def test_onload_is_best_single_predictor(full_pipeline):
    comparison = compare_uplt_with_metrics(full_pipeline["timeline"].clean_dataset, full_pipeline["metrics"])
    correlations = comparison.correlations
    assert correlations["onload"] == max(correlations.values())


def test_ab_agreement_above_chance(full_pipeline):
    agreement = agreement_per_pair(full_pipeline["ab"].clean_dataset)
    assert agreement
    average = sum(agreement.values()) / len(agreement)
    assert average > 0.45


def test_http2_preferred_on_average(full_pipeline):
    scores = score_per_site(full_pipeline["ab"].clean_dataset, treatment_label="h2")
    assert scores
    assert sum(scores.values()) / len(scores) > 0.5


def test_distribution_shapes_classified(full_pipeline):
    shapes = classify_all_distributions(full_pipeline["timeline"].raw_dataset)
    assert len(shapes) == 6
    assert {shape.shape for shape in shapes.values()} <= {"tight", "spread", "multimodal"}


def test_behaviour_summary_has_paid_class(full_pipeline):
    summary = summarise_behaviour(full_pipeline["timeline"].raw_dataset, full_pipeline["timeline"].telemetry)
    assert "paid" in summary.time_on_site_minutes
    assert summary.total_actions["paid"]


def test_paid_and_trusted_campaigns_comparable():
    """A miniature version of the §4 validation: trusted answers agree with paid."""
    corpus = CorpusGenerator(seed=SEED)
    pages = corpus.http2_sample(3)
    settings = CaptureSettings(loads_per_site=2, network_profile="cable-intl")
    tool = Webpeg(settings=settings, seed=SEED)
    videos = [tool.capture(p, "h2").video for p in pages]
    experiment = TimelineExperiment("mini-validation", videos)

    paid = CampaignRunner(
        CampaignConfig("mini-paid", participant_count=40, service="crowdflower", seed=SEED)
    ).run_timeline(experiment)
    trusted = CampaignRunner(
        CampaignConfig("mini-trusted", participant_count=40, service="invited", seed=SEED)
    ).run_timeline(experiment)

    paid_uplt = mean_uplt_per_site(paid.clean_dataset)
    trusted_uplt = mean_uplt_per_site(trusted.clean_dataset)
    assert set(paid_uplt) == set(trusted_uplt)
    for site in paid_uplt:
        assert paid_uplt[site] == pytest.approx(trusted_uplt[site], abs=1.5)
    # Trusted participants fail fewer filters than paid ones.
    assert trusted.filter_report.drop_fraction <= paid.filter_report.drop_fraction + 0.05
