"""Tests for the deterministic random helpers."""

from __future__ import annotations

import pytest

from repro.rng import SeededRNG


def test_same_seed_same_stream():
    a = SeededRNG(5)
    b = SeededRNG(5)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    assert SeededRNG(1).random() != SeededRNG(2).random()


def test_fork_is_deterministic():
    assert SeededRNG(9).fork("x").random() == SeededRNG(9).fork("x").random()


def test_fork_labels_independent():
    parent = SeededRNG(9)
    assert parent.fork("a").random() != parent.fork("b").random()


def test_fork_independent_of_consumption():
    a = SeededRNG(3)
    a.random()
    a.random()
    b = SeededRNG(3)
    assert a.fork("child").random() == b.fork("child").random()


def test_uniform_bounds():
    rng = SeededRNG(1)
    for _ in range(100):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0


def test_randint_bounds():
    rng = SeededRNG(1)
    values = {rng.randint(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}


def test_bernoulli_extremes():
    rng = SeededRNG(1)
    assert all(rng.bernoulli(1.0) for _ in range(20))
    assert not any(rng.bernoulli(0.0) for _ in range(20))


def test_truncated_gauss_bounds():
    rng = SeededRNG(4)
    for _ in range(200):
        value = rng.truncated_gauss(0.5, 10.0, 0.0, 1.0)
        assert 0.0 <= value <= 1.0


def test_weighted_index_prefers_heavy_weight():
    rng = SeededRNG(7)
    picks = [rng.weighted_index([0.01, 0.99]) for _ in range(200)]
    assert picks.count(1) > 150


def test_weighted_index_rejects_zero_weights():
    with pytest.raises(ValueError):
        SeededRNG(1).weighted_index([0.0, 0.0])


def test_choice_and_sample():
    rng = SeededRNG(2)
    items = list(range(10))
    assert rng.choice(items) in items
    sampled = rng.sample(items, 4)
    assert len(sampled) == 4
    assert len(set(sampled)) == 4


def test_shuffle_preserves_elements():
    rng = SeededRNG(2)
    items = list(range(20))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items


def test_lognormal_positive():
    rng = SeededRNG(11)
    assert all(rng.lognormal(0.0, 1.0) > 0 for _ in range(50))


def test_pareto_scale():
    rng = SeededRNG(11)
    assert all(rng.pareto(2.0, scale=3.0) >= 3.0 for _ in range(50))
