"""Tests for the deterministic random helpers and the versioned schemes.

The original single-scheme tests keep running against the default
``sha256-v1`` scheme; the scheme-parametrised and splitmix64-specific
property tests below pin both schemes' streams (exact values frozen here),
their fork independence, their cross-process determinism, and the fork
memoisation contract.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError, RNGDomainError
from repro.rng import (
    RNG_SCHEMES,
    SCHEME_SHA256_V1,
    SCHEME_SPLITMIX64_BATCH_V3,
    SCHEME_SPLITMIX64_V2,
    SeededRNG,
    counter_uniforms,
    validate_scheme,
)


def test_same_seed_same_stream():
    a = SeededRNG(5)
    b = SeededRNG(5)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    assert SeededRNG(1).random() != SeededRNG(2).random()


def test_fork_is_deterministic():
    assert SeededRNG(9).fork("x").random() == SeededRNG(9).fork("x").random()


def test_fork_labels_independent():
    parent = SeededRNG(9)
    assert parent.fork("a").random() != parent.fork("b").random()


def test_fork_independent_of_consumption():
    a = SeededRNG(3)
    a.random()
    a.random()
    b = SeededRNG(3)
    assert a.fork("child").random() == b.fork("child").random()


def test_uniform_bounds():
    rng = SeededRNG(1)
    for _ in range(100):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0


def test_randint_bounds():
    rng = SeededRNG(1)
    values = {rng.randint(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}


def test_bernoulli_extremes():
    rng = SeededRNG(1)
    assert all(rng.bernoulli(1.0) for _ in range(20))
    assert not any(rng.bernoulli(0.0) for _ in range(20))


def test_truncated_gauss_bounds():
    rng = SeededRNG(4)
    for _ in range(200):
        value = rng.truncated_gauss(0.5, 10.0, 0.0, 1.0)
        assert 0.0 <= value <= 1.0


def test_weighted_index_prefers_heavy_weight():
    rng = SeededRNG(7)
    picks = [rng.weighted_index([0.01, 0.99]) for _ in range(200)]
    assert picks.count(1) > 150


def test_weighted_index_rejects_zero_weights():
    with pytest.raises(ValueError):
        SeededRNG(1).weighted_index([0.0, 0.0])


def test_choice_and_sample():
    rng = SeededRNG(2)
    items = list(range(10))
    assert rng.choice(items) in items
    sampled = rng.sample(items, 4)
    assert len(sampled) == 4
    assert len(set(sampled)) == 4


def test_shuffle_preserves_elements():
    rng = SeededRNG(2)
    items = list(range(20))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items


def test_lognormal_positive():
    rng = SeededRNG(11)
    assert all(rng.lognormal(0.0, 1.0) > 0 for _ in range(50))


def test_pareto_scale():
    rng = SeededRNG(11)
    assert all(rng.pareto(2.0, scale=3.0) >= 3.0 for _ in range(50))


# -- versioned schemes ----------------------------------------------------------

#: Exact stream values frozen per scheme: any change to a scheme's fork
#: derivation or uniform core must fail here (re-baselining is an explicit,
#: versioned event — see repro.goldens).
PINNED_STREAMS = {
    SCHEME_SHA256_V1: {
        "root_random": 0.7379250292770178,
        "fork_seed": 9712880070232880221,
        "fork_random": 0.15786508145906164,
    },
    SCHEME_SPLITMIX64_V2: {
        "root_random": 0.9156429121611133,
        "fork_seed": 11293402688824712854,
        "fork_random": 0.5392958915413021,
    },
    # v3 shares v2's scalar core and fork derivation by design (only code
    # that opts into the batch primitives draws differently), so its scalar
    # pins are identical to v2's.
    SCHEME_SPLITMIX64_BATCH_V3: {
        "root_random": 0.9156429121611133,
        "fork_seed": 11293402688824712854,
        "fork_random": 0.5392958915413021,
    },
}


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_pinned_stream_values(scheme):
    pinned = PINNED_STREAMS[scheme]
    assert SeededRNG(2016, scheme).random() == pinned["root_random"]
    fork = SeededRNG(2016, scheme).fork("campaign:final-plt-timeline")
    assert fork.seed == pinned["fork_seed"]
    assert fork.random() == pinned["fork_random"]


def test_unknown_scheme_rejected():
    with pytest.raises(ConfigurationError, match="unknown RNG scheme"):
        SeededRNG(1, scheme="md5-v0")
    with pytest.raises(ConfigurationError):
        validate_scheme("md5-v0")


def test_schemes_produce_different_streams():
    assert SeededRNG(5, SCHEME_SHA256_V1).random() != SeededRNG(5, SCHEME_SPLITMIX64_V2).random()
    assert (SeededRNG(5, SCHEME_SHA256_V1).fork("x").seed
            != SeededRNG(5, SCHEME_SPLITMIX64_V2).fork("x").seed)


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_fork_inherits_scheme(scheme):
    child = SeededRNG(9, scheme).fork("a").fork("b")
    assert child.scheme == scheme


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_fork_deterministic_and_consumption_independent(scheme):
    a = SeededRNG(3, scheme)
    a.random()
    a.random()
    b = SeededRNG(3, scheme)
    assert a.fork("child").random() == b.fork("child").random()


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_fork_memoisation_returns_identical_streams_per_label(scheme):
    parent = SeededRNG(11, scheme)
    first = parent.fork("stream")
    second = parent.fork("stream")
    assert first.seed == second.seed
    assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]
    # The memo really is hit: the derived seed is cached on the parent.
    assert parent._fork_memo["stream"] == first.seed


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_fork_random_matches_fork_then_random(scheme):
    parent = SeededRNG(123, scheme)
    probe = SeededRNG(123, scheme)
    for label in ("tie:p-0001:0", "tie:p-0001:1", "x", ""):
        assert parent.fork_random(label) == probe.fork(label).random()


def test_v2_prefix_labels_give_uncorrelated_streams():
    """Disjoint prefixes (one label extending another) must not correlate."""
    parent = SeededRNG(42, SCHEME_SPLITMIX64_V2)
    for base, extended in (("task", "task:1"), ("task:1", "task:11"), ("a", "ab")):
        xs = parent.fork(base)
        ys = parent.fork(extended)
        pairs = [(xs.random(), ys.random()) for _ in range(500)]
        mean_x = sum(p[0] for p in pairs) / len(pairs)
        mean_y = sum(p[1] for p in pairs) / len(pairs)
        covariance = sum((x - mean_x) * (y - mean_y) for x, y in pairs) / len(pairs)
        # Uniform variance is 1/12; |corr| < 0.15 at n=500 for independent streams.
        assert abs(covariance * 12.0) < 0.15, (base, extended, covariance)


def test_v2_sibling_labels_give_distinct_seeds():
    parent = SeededRNG(7, SCHEME_SPLITMIX64_V2)
    seeds = {parent.fork(f"site-{index:04d}").seed for index in range(2000)}
    assert len(seeds) == 2000


def test_v2_uniform_core_bounds_and_spread():
    rng = SeededRNG(1, SCHEME_SPLITMIX64_V2)
    values = [rng.random() for _ in range(5000)]
    assert all(0.0 <= value < 1.0 for value in values)
    assert 0.45 < sum(values) / len(values) < 0.55
    assert len(set(values)) == len(values)


def test_v2_uniform_and_randint_bounds():
    rng = SeededRNG(1, SCHEME_SPLITMIX64_V2)
    for _ in range(200):
        assert 2.0 <= rng.uniform(2.0, 3.0) <= 3.0
    assert {rng.randint(1, 3) for _ in range(200)} == {1, 2, 3}
    with pytest.raises(ValueError):
        rng.randint(3, 1)


def test_v2_distributions_sane():
    rng = SeededRNG(4, SCHEME_SPLITMIX64_V2)
    gauss = [rng.gauss(0.0, 1.0) for _ in range(4000)]
    assert abs(sum(gauss) / len(gauss)) < 0.08
    assert 0.8 < sum(g * g for g in gauss) / len(gauss) < 1.2
    assert all(rng.lognormal(0.0, 1.0) > 0 for _ in range(100))
    assert all(rng.expovariate(2.0) >= 0 for _ in range(100))
    assert all(rng.pareto(2.0, scale=3.0) >= 3.0 for _ in range(100))
    for _ in range(100):
        assert 0.0 <= rng.truncated_gauss(0.5, 10.0, 0.0, 1.0) <= 1.0


def test_v2_collection_helpers():
    rng = SeededRNG(2, SCHEME_SPLITMIX64_V2)
    items = list(range(20))
    assert rng.choice(items) in items
    sampled = rng.sample(items, 7)
    assert len(sampled) == 7 and len(set(sampled)) == 7 and set(sampled) <= set(items)
    with pytest.raises(ValueError):
        rng.sample(items, 21)
    with pytest.raises(IndexError):
        rng.choice([])
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items and shuffled != items
    picks = rng.choices(["a", "b"], weights=[0.01, 0.99], k=300)
    assert picks.count("b") > 250
    heavy = [rng.weighted_index([0.01, 0.99]) for _ in range(300)]
    assert heavy.count(1) > 250
    assert all(rng.bernoulli(1.0) for _ in range(20))
    assert not any(rng.bernoulli(0.0) for _ in range(20))


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_streams_deterministic_across_processes(scheme):
    """A subprocess derives the exact same forked streams (no hash salt)."""
    program = (
        "from repro.rng import SeededRNG\n"
        f"rng = SeededRNG(2016, {scheme!r}).fork('cross:process').fork('stream')\n"
        "print(repr([rng.random() for _ in range(8)]))\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "random"
    outputs = {
        subprocess.run(
            [sys.executable, "-c", program], capture_output=True, text=True, env=env, check=True
        ).stdout.strip()
        for _ in range(2)
    }
    local = SeededRNG(2016, scheme).fork("cross:process").fork("stream")
    outputs.add(repr([local.random() for _ in range(8)]))
    assert len(outputs) == 1, outputs


# -- batch primitives (v3) -------------------------------------------------------

@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_random_array_equals_scalar_draws(scheme):
    """Batch uniforms are the scalar stream, bit for bit, under every scheme."""
    batch = SeededRNG(2016, scheme).random_array(100)
    scalar_rng = SeededRNG(2016, scheme)
    assert batch == [scalar_rng.random() for _ in range(100)]


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_uniform_array_equals_scalar_draws(scheme):
    batch = SeededRNG(7, scheme).uniform_array(2.0, 5.0, 64)
    scalar_rng = SeededRNG(7, scheme)
    assert batch == [scalar_rng.uniform(2.0, 5.0) for _ in range(64)]


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_bernoulli_array_equals_scalar_draws(scheme):
    batch = SeededRNG(9, scheme).bernoulli_array(0.3, 200)
    scalar_rng = SeededRNG(9, scheme)
    assert batch == [scalar_rng.bernoulli(0.3) for _ in range(200)]


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_gauss_array_equals_scalar_draws(scheme):
    """Including the Box-Muller spare cache: odd/even splits must agree."""
    for count in (1, 2, 7, 64):
        batch = SeededRNG(11, scheme).gauss_array(1.5, 2.0, count)
        scalar_rng = SeededRNG(11, scheme)
        assert batch == [scalar_rng.gauss(1.5, 2.0) for _ in range(count)], count


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_gauss_array_interleaves_with_scalar_spare(scheme):
    """A scalar gauss leaves a spare; the next batch must consume it first."""
    a = SeededRNG(13, scheme)
    b = SeededRNG(13, scheme)
    mixed = [a.gauss(0.0, 1.0)] + a.gauss_array(0.0, 1.0, 5)
    scalar = [b.gauss(0.0, 1.0) for _ in range(6)]
    assert mixed == scalar


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_batch_draws_are_chunk_invariant(scheme):
    """Splitting one block into any chunking yields the same stream."""
    whole = SeededRNG(17, scheme).random_array(60)
    rng = SeededRNG(17, scheme)
    chunked = rng.random_array(1) + rng.random_array(25) + rng.random_array(34)
    assert whole == chunked


def test_counter_uniforms_matches_stream_and_offsets():
    """The public counter stream equals v3 sequential draws at any offset."""
    seed = SeededRNG(2016, SCHEME_SPLITMIX64_BATCH_V3).fork("kernel").seed
    stream = SeededRNG(seed, SCHEME_SPLITMIX64_BATCH_V3).random_array(50)
    assert counter_uniforms(seed, 0, 50) == stream
    assert counter_uniforms(seed, 10, 25) == stream[10:35]
    assert counter_uniforms(seed, 0, 0) == []
    with pytest.raises(RNGDomainError):
        counter_uniforms(seed, 0, -1)


def test_batch_primitives_reject_negative_counts():
    rng = SeededRNG(1, SCHEME_SPLITMIX64_BATCH_V3)
    for call in (lambda: rng.random_array(-1),
                 lambda: rng.uniform_array(0.0, 1.0, -1),
                 lambda: rng.bernoulli_array(0.5, -1),
                 lambda: rng.gauss_array(0.0, 1.0, -1)):
        with pytest.raises(RNGDomainError):
            call()


def test_numpy_fallback_produces_identical_bits(monkeypatch):
    """The pure-stdlib path is bit-identical to the numpy block path."""
    import repro.rng as rng_module

    with_numpy = SeededRNG(2016, SCHEME_SPLITMIX64_BATCH_V3).random_array(256)
    gauss_with = SeededRNG(2016, SCHEME_SPLITMIX64_BATCH_V3).gauss_array(0.0, 1.0, 101)
    monkeypatch.setattr(rng_module, "_np", None)
    without = SeededRNG(2016, SCHEME_SPLITMIX64_BATCH_V3).random_array(256)
    gauss_without = SeededRNG(2016, SCHEME_SPLITMIX64_BATCH_V3).gauss_array(0.0, 1.0, 101)
    assert with_numpy == without
    assert gauss_with == gauss_without


def test_v3_scalar_core_matches_v2():
    """v3 only changes opt-in batch call sites; its scalar core is v2's."""
    v2 = SeededRNG(99, SCHEME_SPLITMIX64_V2)
    v3 = SeededRNG(99, SCHEME_SPLITMIX64_BATCH_V3)
    assert [v2.random() for _ in range(20)] == [v3.random() for _ in range(20)]
    assert v2.fork("x").seed == v3.fork("x").seed
    assert v2.fork("g").gauss(0.0, 1.0) == v3.fork("g").gauss(0.0, 1.0)


# -- domain validation (bugfix sweep) --------------------------------------------

@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_expovariate_rejects_non_positive_rate(scheme):
    rng = SeededRNG(1, scheme)
    for rate in (0.0, -1.5):
        with pytest.raises(RNGDomainError, match="rate"):
            rng.expovariate(rate)


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_pareto_rejects_non_positive_alpha(scheme):
    rng = SeededRNG(1, scheme)
    for alpha in (0.0, -2.0):
        with pytest.raises(RNGDomainError, match="alpha"):
            rng.pareto(alpha)


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_truncated_gauss_rejects_impossible_window(scheme):
    with pytest.raises(RNGDomainError, match="low"):
        SeededRNG(1, scheme).truncated_gauss(0.5, 1.0, 2.0, 1.0)


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_truncated_gauss_terminates_when_window_excludes_mass(scheme):
    """sigma=0 with mu outside the window must clamp, not loop forever."""
    assert SeededRNG(1, scheme).truncated_gauss(5.0, 0.0, 0.0, 1.0) == 1.0
    assert SeededRNG(1, scheme).truncated_gauss(-5.0, 0.0, 0.0, 1.0) == 0.0


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_weight_validation(scheme):
    rng = SeededRNG(1, scheme)
    with pytest.raises(RNGDomainError, match="at least one weight"):
        rng.weighted_index([])
    with pytest.raises(RNGDomainError, match="non-negative"):
        rng.weighted_index([0.5, -0.1])
    with pytest.raises(RNGDomainError, match="sum"):
        rng.weighted_index([0.0, 0.0])
    with pytest.raises(RNGDomainError, match="at least one weight"):
        rng.choices([], weights=[], k=1)
    with pytest.raises(RNGDomainError, match="non-negative"):
        rng.choices(["a", "b"], weights=[1.0, -1.0], k=1)
    with pytest.raises(RNGDomainError, match="sum"):
        rng.choices(["a", "b"], weights=[0.0, 0.0], k=1)
    with pytest.raises(RNGDomainError, match="weights for"):
        rng.choices(["a", "b"], weights=[1.0], k=1)


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_sample_size_pinned_to_population(scheme):
    rng = SeededRNG(1, scheme)
    items = list(range(5))
    with pytest.raises(RNGDomainError):
        rng.sample(items, 6)
    with pytest.raises(RNGDomainError):
        rng.sample(items, -1)
    assert rng.sample(items, 0) == []
