"""Parallel executors under failure: crashes, interrupts, half-done ingests.

The process-pool paths must fail *loudly and cleanly*: a worker raising
mid-batch surfaces a clear error naming the participant (no hang, no
partial silent merge), a ``KeyboardInterrupt`` tears the pool down and
leaves no half-written warehouse state, and injected worker crashes are
absorbed with results bit-identical to the serial path.

The pool uses the ``fork`` start method on Linux, so patching *class*
methods in the parent propagates into workers (children inherit the
parent's memory at fork); patching module-level functions would not
survive pickling by qualified name.
"""

from __future__ import annotations

import pytest

from repro.capture.webpeg import DEFAULT_CAPTURE_CACHE
from repro.core.campaign import CampaignConfig, CampaignRunner
from repro.core.session import ParticipantSession
from repro.errors import CampaignError
from repro.faults import FaultPlan
from repro.warehouse import ResultsWarehouse

pytestmark = pytest.mark.faults


def _plt_campaign(**overrides):
    from repro.experiments.plt_campaign import run_plt_campaign

    kwargs = dict(sites=3, participants=10, loads_per_site=2, seed=2016)
    kwargs.update(overrides)
    DEFAULT_CAPTURE_CACHE.clear()
    try:
        return run_plt_campaign(**kwargs)
    finally:
        DEFAULT_CAPTURE_CACHE.clear()


def test_worker_exception_surfaces_participant_and_does_not_merge(
    timeline_experiment, monkeypatch
):
    def explode(self, tasks):
        raise RuntimeError("worker exploded mid-session")

    monkeypatch.setattr(ParticipantSession, "run_timeline", explode)
    config = CampaignConfig(
        campaign_id="exec-crash", participant_count=8, seed=2016, parallel_workers=2
    )
    with pytest.raises(CampaignError, match="parallel session batch failed at participant"):
        CampaignRunner(config).run_timeline(timeline_experiment)


def test_worker_exception_in_faulted_pool_surfaces_participant(
    timeline_experiment, monkeypatch
):
    # The per-future faulted path must be just as loud for *real* (i.e. not
    # plan-injected) worker failures.
    def explode(self, tasks):
        raise RuntimeError("worker exploded mid-session")

    monkeypatch.setattr(ParticipantSession, "run_timeline", explode)
    from repro.faults import FaultInjector

    config = CampaignConfig(
        campaign_id="exec-crash-faulted", participant_count=8, seed=2016,
        parallel_workers=2,
    )
    runner = CampaignRunner(config, injector=FaultInjector(FaultPlan(dropout_rate=0.01)))
    with pytest.raises(CampaignError, match="session worker failed for participant"):
        runner.run_timeline(timeline_experiment)


def test_keyboard_interrupt_escapes_pool_and_leaves_warehouse_empty(
    tmp_path, monkeypatch
):
    def interrupted(self, tasks):
        raise KeyboardInterrupt

    monkeypatch.setattr(ParticipantSession, "run_timeline", interrupted)
    warehouse = ResultsWarehouse(tmp_path / "wh")
    with pytest.raises(KeyboardInterrupt):
        _plt_campaign(participants=8, session_workers=2, warehouse=warehouse)
    # The interrupt fired before ingest: no index, no records, no debris.
    assert len(ResultsWarehouse(tmp_path / "wh")) == 0
    assert not (tmp_path / "wh" / "records").exists()
    assert ResultsWarehouse(tmp_path / "wh").fsck().clean


def test_keyboard_interrupt_mid_ingest_is_repairable(tmp_path, monkeypatch):
    result = _plt_campaign()
    warehouse = ResultsWarehouse(tmp_path / "wh")

    def interrupted(self):
        raise KeyboardInterrupt

    monkeypatch.setattr(ResultsWarehouse, "_save_index", interrupted)
    with pytest.raises(KeyboardInterrupt):
        warehouse.ingest(result)
    monkeypatch.undo()

    # The record landed atomically; only the index write was cut short.
    damaged = ResultsWarehouse(tmp_path / "wh")
    report = damaged.fsck()
    assert not report.clean
    assert len(report.unindexed) == 1 and not report.corrupt and not report.tmp_debris
    record_id = report.unindexed[0]
    damaged.fsck(repair=True)
    repaired = ResultsWarehouse(tmp_path / "wh")
    assert repaired.fsck().clean
    assert repaired.get(record_id).load()["campaign_id"] == "final-plt-timeline"
    # Re-ingesting the same result is now a no-op with the same id.
    again = repaired.ingest(result)
    assert again.record_id == record_id and len(repaired) == 1


def test_injected_worker_crashes_are_absorbed_bit_identically():
    plan = FaultPlan(seed=2016, worker_crash_rate=1.0)
    pooled = _plt_campaign(participants=8, session_workers=2, fault_plan=plan)
    serial = _plt_campaign(participants=8, session_workers=0, fault_plan=plan)
    assert pooled.uplt_by_site == serial.uplt_by_site
    assert pooled.campaign.table1_row == serial.campaign.table1_row
    # Every admitted participant's worker crashed exactly once and was
    # re-run in the parent; the serial path never exercises the boundary.
    admitted = len(pooled.campaign.telemetry)
    assert pooled.resilience.counters["worker_crashes_injected"] == admitted > 0
    assert serial.resilience.counters["worker_crashes_injected"] == 0
    # Absorption is execution detail, not provenance: the records agree.
    assert (pooled.resilience.provenance_dict()
            == serial.resilience.provenance_dict())
