"""Equivalence tests for the performance-optimised hot paths.

The capture→campaign pipeline was rewritten for speed (indexed page model,
single-sweep frame sampling, bisect lookups, capture cache, cheap RNG forks,
optional process-pool executors) under one hard contract: **bit-identical
results**.  These tests pin that contract:

* naive reference implementations (kept here, deliberately dumb) of
  ``frames_from_timeline``, ``frame_at``, ``completeness_at`` and
  ``earliest_similar_frame`` are compared against the optimised versions on
  randomized timelines;
* a full bench-seeded PLT campaign must reproduce the pinned golden outputs
  of the seed implementation, serial vs parallel, cache cold vs warm.

Marked ``tier2``: run with ``PYTHONPATH=src python -m pytest -m tier2 -q``.
"""

from __future__ import annotations

import pytest

from repro.browser.renderer import PaintEvent, RenderTimeline
from repro.capture.frames import Frame, FrameBuffer, frames_from_timeline
from repro.capture.webpeg import CaptureCache, CaptureSettings, Webpeg
from repro.core.campaign import CampaignConfig, CampaignRunner
from repro.experiments.plt_campaign import run_plt_campaign
from repro.rng import SeededRNG
from repro.web.corpus import CorpusGenerator

pytestmark = pytest.mark.tier2

# -- naive reference implementations (the seed algorithms) ----------------------


def naive_frames_from_timeline(timeline: RenderTimeline, fps: int, duration: float) -> FrameBuffer:
    """O(frames x events) reference sampler (the seed implementation)."""
    total_pixels = timeline.painted_pixels
    frame_count = max(int(duration * fps) + 1, 2)
    frames = []
    for index in range(frame_count):
        timestamp = index / fps
        painted = frozenset(e.object_id for e in timeline.events if e.time <= timestamp)
        painted_pixels = sum(e.pixels for e in timeline.events if e.time <= timestamp)
        completeness = painted_pixels / total_pixels if total_pixels else 1.0
        frames.append(
            Frame(index=index, timestamp=timestamp, painted_objects=painted,
                  painted_pixels=painted_pixels, completeness=completeness)
        )
    return FrameBuffer(frames=frames, fps=fps, viewport_pixels=timeline.viewport_pixels)


def naive_frame_at(buffer: FrameBuffer, timestamp: float) -> Frame:
    """Linear-scan reference for :meth:`FrameBuffer.frame_at`."""
    if timestamp <= buffer.frames[0].timestamp:
        return buffer.frames[0]
    for frame in reversed(buffer.frames):
        if frame.timestamp <= timestamp:
            return frame
    return buffer.frames[-1]


def naive_earliest_similar_frame(buffer: FrameBuffer, timestamp: float, threshold: float) -> Frame:
    """Reversed-scan reference for :meth:`FrameBuffer.earliest_similar_frame`."""
    chosen = naive_frame_at(buffer, timestamp)
    earliest = chosen
    for frame in reversed(buffer.frames):
        if frame.timestamp > chosen.timestamp:
            continue
        if chosen.pixel_difference(frame, buffer.viewport_pixels) <= threshold:
            earliest = frame
        else:
            break
    return earliest


def naive_completeness_at(timeline: RenderTimeline, time: float) -> float:
    """Linear re-sum reference for :meth:`RenderTimeline.completeness_at`."""
    total = sum(e.pixels for e in timeline.events)
    if total == 0:
        return 1.0
    painted = sum(e.pixels for e in timeline.events if e.time <= time)
    return painted / total


def random_timeline(rng: SeededRNG, events: int) -> RenderTimeline:
    """A randomized paint timeline for property testing."""
    paint_events = [
        PaintEvent(
            time=round(rng.uniform(0.0, 6.0), 3),
            object_id=f"obj-{index}",
            pixels=rng.randint(1, 50_000),
            is_primary_content=rng.bernoulli(0.7),
        )
        for index in range(events)
    ]
    return RenderTimeline(events=paint_events, viewport_pixels=1_000_000)


# -- property tests: optimised == naive -----------------------------------------


@pytest.mark.parametrize("case", range(20))
def test_frames_from_timeline_matches_naive(case):
    rng = SeededRNG(1000 + case)
    timeline = random_timeline(rng, events=rng.randint(1, 40))
    fps = rng.randint(5, 30)
    duration = rng.uniform(0.5, 8.0)
    fast = frames_from_timeline(timeline, fps=fps, duration=duration)
    naive = naive_frames_from_timeline(timeline, fps=fps, duration=duration)
    assert fast.frames == naive.frames
    assert fast.viewport_pixels == naive.viewport_pixels


@pytest.mark.parametrize("case", range(20))
def test_frame_lookups_match_naive(case):
    rng = SeededRNG(2000 + case)
    timeline = random_timeline(rng, events=rng.randint(1, 40))
    buffer = frames_from_timeline(timeline, fps=10, duration=rng.uniform(1.0, 8.0))
    for _ in range(50):
        t = rng.uniform(-1.0, buffer.duration + 1.0)
        assert buffer.frame_at(t) == naive_frame_at(buffer, t)
        assert buffer.completeness_at(t) == naive_frame_at(buffer, t).completeness
        threshold = rng.uniform(0.0, 0.2)
        assert buffer.earliest_similar_frame(t, threshold) == \
            naive_earliest_similar_frame(buffer, t, threshold)


@pytest.mark.parametrize("case", range(20))
def test_timeline_completeness_matches_naive(case):
    rng = SeededRNG(3000 + case)
    timeline = random_timeline(rng, events=rng.randint(0, 40))
    for _ in range(50):
        t = rng.uniform(-1.0, 7.0)
        assert timeline.completeness_at(t) == naive_completeness_at(timeline, t)


# -- campaign-level equivalence -------------------------------------------------

#: Golden outputs of run_plt_campaign(sites=5, participants=20, seed=2016)
#: produced by the seed (pre-optimisation) implementation.
GOLDEN_SMALL_TABLE1 = {
    "campaign": "final-plt-timeline",
    "type": "timeline",
    "participants": 20,
    "male": 15,
    "female": 5,
    "duration": "0.3 hours",
    "cost_usd": 2.4,
    "engagement_filtered": 1,
    "soft_filtered": 1,
    "control_filtered": 0,
}
GOLDEN_SMALL_UPLT = {
    "site-000": "2.7015962841293977",
    "site-001": "6.516666666666667",
    "site-002": "2.2583333333333333",
    "site-003": "1.9000000000000001",
    "site-004": "1.48",
}


def _campaign_signature(result):
    return (
        result.campaign.table1_row,
        {site: repr(value) for site, value in sorted(result.uplt_by_site.items())},
        result.campaign.filter_report.summary_row(),
    )


def test_small_campaign_matches_seed_goldens():
    """The optimised pipeline reproduces the seed implementation bit-for-bit."""
    result = run_plt_campaign(sites=5, participants=20, seed=2016)
    table1, uplt, _filters = _campaign_signature(result)
    assert table1 == GOLDEN_SMALL_TABLE1
    assert uplt == GOLDEN_SMALL_UPLT


def test_campaign_serial_vs_parallel_and_cache_cold_vs_warm():
    """Identical outputs across executors and cache states."""
    from repro.capture.webpeg import DEFAULT_CAPTURE_CACHE

    DEFAULT_CAPTURE_CACHE.clear()
    cold = _campaign_signature(run_plt_campaign(sites=5, participants=20, seed=2016))
    warm = _campaign_signature(run_plt_campaign(sites=5, participants=20, seed=2016))
    parallel = _campaign_signature(
        run_plt_campaign(sites=5, participants=20, seed=2016,
                         capture_workers=2, session_workers=2)
    )
    assert cold == warm == parallel
    assert cold[0] == GOLDEN_SMALL_TABLE1


def test_capture_cache_isolates_mutable_video_state():
    """Cache hits must not leak broken-video flags between campaigns."""
    corpus = CorpusGenerator(seed=2016)
    page = corpus.http2_sample(1)[0]
    cache = CaptureCache()
    tool = Webpeg(settings=CaptureSettings(loads_per_site=2), seed=2016, cache=cache)
    first = tool.capture(page, configuration="h2")
    first.video.flag_broken("w1")
    second = tool.capture(page, configuration="h2")
    assert cache.hits == 1
    assert second.video.flagged_by == set()
    assert not second.video.banned
    assert second.video.frames.frames == first.video.frames.frames


def test_session_parallel_timeline_equivalence(timeline_experiment):
    """Serial and pooled sessions produce identical datasets."""
    serial = CampaignRunner(
        CampaignConfig(campaign_id="eq", participant_count=15, seed=7)
    ).run_timeline(timeline_experiment)
    pooled = CampaignRunner(
        CampaignConfig(campaign_id="eq", participant_count=15, seed=7, parallel_workers=2)
    ).run_timeline(timeline_experiment)
    assert serial.table1_row == pooled.table1_row
    assert [
        (r.participant_id, r.video_id, r.submitted_time)
        for r in serial.raw_dataset.timeline_responses
    ] == [
        (r.participant_id, r.video_id, r.submitted_time)
        for r in pooled.raw_dataset.timeline_responses
    ]
