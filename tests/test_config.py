"""Tests for the top-level configuration objects."""

from __future__ import annotations

import pytest

from repro.config import (
    AB_CONTROL_DELAY_SECONDS,
    DEFAULT_CAMPAIGNS,
    DEFAULT_CONFIG,
    FRAME_SIMILARITY_THRESHOLD,
    LOADS_PER_SITE,
    VIDEOS_PER_PARTICIPANT,
    CampaignDefaults,
    ReproConfig,
)
from repro.errors import ConfigurationError


def test_paper_constants():
    assert VIDEOS_PER_PARTICIPANT == 6
    assert LOADS_PER_SITE == 5
    assert FRAME_SIMILARITY_THRESHOLD == pytest.approx(0.01)
    assert AB_CONTROL_DELAY_SECONDS == pytest.approx(3.0)


def test_default_config_is_valid():
    assert DEFAULT_CONFIG.videos_per_participant == 6
    assert DEFAULT_CONFIG.loads_per_site == 5


def test_default_campaigns_match_table1():
    assert DEFAULT_CAMPAIGNS.validation_participants == 100
    assert DEFAULT_CAMPAIGNS.validation_sites == 20
    assert DEFAULT_CAMPAIGNS.final_participants == 1000
    assert DEFAULT_CAMPAIGNS.final_sites == 100
    assert DEFAULT_CAMPAIGNS.paid_cost_final_usd == pytest.approx(120.0)


def test_invalid_videos_per_participant():
    with pytest.raises(ConfigurationError):
        ReproConfig(videos_per_participant=0)


def test_invalid_loads_per_site():
    with pytest.raises(ConfigurationError):
        ReproConfig(loads_per_site=-1)


def test_invalid_fps():
    with pytest.raises(ConfigurationError):
        ReproConfig(capture_fps=0)


def test_invalid_similarity_threshold():
    with pytest.raises(ConfigurationError):
        ReproConfig(frame_similarity_threshold=1.5)


def test_invalid_control_delay():
    with pytest.raises(ConfigurationError):
        ReproConfig(ab_control_delay=0.0)


def test_campaign_defaults_constructible():
    defaults = CampaignDefaults(validation_participants=10)
    assert defaults.validation_participants == 10


def test_make_warehouse_expands_home_and_creates_parents(tmp_path, monkeypatch):
    monkeypatch.setenv("HOME", str(tmp_path))
    warehouse = ReproConfig(warehouse_dir="~/stores/deep/warehouse").make_warehouse()
    assert warehouse.root == tmp_path / "stores" / "deep" / "warehouse"
    assert warehouse.root.is_dir()
    assert len(warehouse) == 0


def test_blank_warehouse_dir_rejected():
    with pytest.raises(ConfigurationError):
        ReproConfig(warehouse_dir="   ")
