"""Tests for browser preferences and the fetch scheduler."""

from __future__ import annotations

import pytest

from repro.browser.preferences import BrowserPreferences
from repro.browser.scheduler import FetchScheduler, ONLOAD_DISPATCH_OVERHEAD, blocked_fetch_record
from repro.errors import ConfigurationError
from repro.httpsim.http2 import HTTP2Client
from repro.netsim.bandwidth import BandwidthModel, SharedLink
from repro.netsim.dns import DNSResolver
from repro.netsim.latency import LatencyModel
from repro.rng import SeededRNG


# -- preferences -------------------------------------------------------------------


def test_default_preferences():
    prefs = BrowserPreferences()
    assert prefs.protocol == "auto"
    assert prefs.kiosk_mode
    assert prefs.disable_local_cache


def test_invalid_protocol_rejected():
    with pytest.raises(ConfigurationError):
        BrowserPreferences(protocol="gopher")


def test_resolve_protocol_auto():
    prefs = BrowserPreferences(protocol="auto")
    assert prefs.resolve_protocol(True) == "h2"
    assert prefs.resolve_protocol(False) == "http/1.1"


def test_resolve_protocol_forced():
    assert BrowserPreferences(protocol="http/1.1").resolve_protocol(True) == "http/1.1"
    assert BrowserPreferences(protocol="h2").resolve_protocol(False) == "h2"


def test_with_protocol_and_extension():
    prefs = BrowserPreferences()
    h1 = prefs.with_protocol("http/1.1")
    assert h1.protocol == "http/1.1"
    with_ghostery = prefs.with_extension("ghostery")
    assert [e.name for e in with_ghostery.extensions] == ["ghostery"]
    without = with_ghostery.with_extension(None)
    assert without.extensions == []


def test_command_line_flags():
    prefs = BrowserPreferences(protocol="http/1.1").with_extension("ublock")
    flags = prefs.command_line_flags()
    assert "--disable-http2" in flags
    assert any("ublock" in flag for flag in flags)
    assert "--kiosk" in flags


def test_invalid_scale_factor():
    with pytest.raises(ConfigurationError):
        BrowserPreferences(device_scale_factor=0)


# -- scheduler ---------------------------------------------------------------------


def make_client(seed: int = 4) -> HTTP2Client:
    latency = LatencyModel(base_rtt=0.05, jitter=0.0)
    link = SharedLink(bandwidth=BandwidthModel(downlink_bps=16_000_000, uplink_bps=4_000_000))
    rng = SeededRNG(seed)
    return HTTP2Client(latency=latency, link=link, dns=DNSResolver(latency, rng), rng=rng)


def test_scheduler_fetches_every_object(simple_page):
    scheduler = FetchScheduler(make_client(), SeededRNG(1))
    result = scheduler.schedule(simple_page)
    assert set(result.fetches) == set(simple_page.objects)


def test_scheduler_children_after_parents(simple_page):
    scheduler = FetchScheduler(make_client(), SeededRNG(1))
    result = scheduler.schedule(simple_page)
    for obj in simple_page.iter_objects():
        if obj.discovered_by is None:
            continue
        parent_record = result.fetches[obj.discovered_by]
        child_record = result.fetches[obj.object_id]
        assert child_record.discovered_at >= parent_record.first_byte_at - 1e-9


def test_onload_covers_static_objects(simple_page):
    scheduler = FetchScheduler(make_client(), SeededRNG(1))
    result = scheduler.schedule(simple_page)
    static_max = max(
        record.completed_at
        for object_id, record in result.fetches.items()
        if not simple_page.objects[object_id].loaded_by_script
    )
    assert result.onload == pytest.approx(static_max + ONLOAD_DISPATCH_OVERHEAD)
    assert result.fully_loaded >= result.onload - 1e-9


def test_script_loaded_objects_may_finish_after_onload(page):
    scheduler = FetchScheduler(make_client(), SeededRNG(1))
    result = scheduler.schedule(page)
    script_loaded = [
        record.completed_at
        for object_id, record in result.fetches.items()
        if page.objects[object_id].loaded_by_script
    ]
    assert script_loaded
    assert max(script_loaded) == pytest.approx(result.fully_loaded)


def test_extension_overhead_delays_fetches(simple_page):
    fast = FetchScheduler(make_client(seed=9), SeededRNG(1)).schedule(simple_page)
    slow = FetchScheduler(make_client(seed=9), SeededRNG(1), extension_overhead=0.05).schedule(simple_page)
    assert slow.onload > fast.onload


def test_blocked_fetch_record_shape(page):
    obj = next(iter(page.objects.values()))
    record = blocked_fetch_record(obj, discovered_at=1.5)
    assert record.blocked
    assert record.response is None
    assert record.completed_at == pytest.approx(1.5)
