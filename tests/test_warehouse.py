"""Tests for the campaign results warehouse (store, query, stats)."""

from __future__ import annotations

import json

import pytest

from repro.errors import AnalysisError, WarehouseError
from repro.rng import RNG_SCHEMES, SCHEME_SHA256_V1, SCHEME_SPLITMIX64_V2
from repro.warehouse import (
    ResultsWarehouse,
    bootstrap_mean_ci,
    canonical_json,
    compare,
    fleiss_kappa,
    inter_rater_agreement,
    record_id_for,
    record_stats,
    spearman_correlation,
)


@pytest.fixture(scope="module")
def plt_results():
    """One tiny PLT campaign per RNG scheme (shared across this module)."""
    from repro.capture.webpeg import DEFAULT_CAPTURE_CACHE
    from repro.experiments.plt_campaign import run_plt_campaign

    results = {}
    for scheme in RNG_SCHEMES:
        DEFAULT_CAPTURE_CACHE.clear()
        results[scheme] = run_plt_campaign(
            sites=3, participants=10, loads_per_site=2, seed=2016, rng_scheme=scheme,
        )
    DEFAULT_CAPTURE_CACHE.clear()
    return results


@pytest.fixture()
def warehouse(tmp_path):
    return ResultsWarehouse(tmp_path / "warehouse")


# -- ingest ------------------------------------------------------------------------


def test_ingest_writes_content_addressed_record(warehouse, plt_results):
    record = warehouse.ingest(plt_results[SCHEME_SHA256_V1])
    assert len(record.record_id) == 64
    assert record.path.exists()
    import hashlib

    assert hashlib.sha256(record.path.read_bytes()).hexdigest() == record.record_id
    assert record.kind == "plt"
    assert record.rng_scheme == SCHEME_SHA256_V1
    assert record.network_profile == "cable-intl"
    assert record.seed == 2016


def test_ingest_is_idempotent(warehouse, plt_results):
    first = warehouse.ingest(plt_results[SCHEME_SHA256_V1])
    second = warehouse.ingest(plt_results[SCHEME_SHA256_V1])
    assert first.record_id == second.record_id
    assert len(warehouse) == 1


def test_ingest_id_is_stable_across_store_instances(tmp_path, plt_results):
    a = ResultsWarehouse(tmp_path / "a").ingest(plt_results[SCHEME_SHA256_V1])
    b = ResultsWarehouse(tmp_path / "b").ingest(plt_results[SCHEME_SHA256_V1])
    assert a.record_id == b.record_id


def test_changed_result_with_same_campaign_key_raises(warehouse, plt_results):
    from repro.capture.webpeg import DEFAULT_CAPTURE_CACHE
    from repro.experiments.plt_campaign import run_plt_campaign

    warehouse.ingest(plt_results[SCHEME_SHA256_V1])
    DEFAULT_CAPTURE_CACHE.clear()
    changed = run_plt_campaign(
        sites=3, participants=10, loads_per_site=2, seed=2016,
        rng_scheme=SCHEME_SHA256_V1, frame_helper_enabled=False,
    )
    DEFAULT_CAPTURE_CACHE.clear()
    with pytest.raises(WarehouseError, match="append-only"):
        warehouse.ingest(changed)


def test_same_campaign_under_both_schemes_coexists(warehouse, plt_results):
    for scheme in RNG_SCHEMES:
        warehouse.ingest(plt_results[scheme])
    assert len(warehouse) == len(RNG_SCHEMES)
    assert {r.rng_scheme for r in warehouse.records()} == set(RNG_SCHEMES)


def test_ingest_bare_campaign_result_and_sweep(warehouse, timeline_campaign, ab_campaign):
    record = warehouse.ingest(timeline_campaign)
    assert record.kind == "timeline"
    assert record.experiment_type == "timeline"
    ab_record = warehouse.ingest(ab_campaign, kind="h1h2")
    assert ab_record.kind == "h1h2"
    assert len(warehouse) == 2


def test_ingest_rejects_unknown_types(warehouse):
    with pytest.raises(WarehouseError, match="cannot ingest"):
        warehouse.ingest({"not": "a result"})


def test_tampered_record_fails_integrity_check(warehouse, plt_results):
    record = warehouse.ingest(plt_results[SCHEME_SHA256_V1])
    body = json.loads(record.path.read_text(encoding="utf-8"))
    body["videos_served"] = 0
    record.path.write_text(canonical_json(body), encoding="utf-8")
    fresh = ResultsWarehouse(warehouse.root).get(record.record_id)
    with pytest.raises(WarehouseError, match="content-address mismatch"):
        fresh.load()


def test_reindex_rebuilds_sidecar_from_records(warehouse, plt_results):
    record = warehouse.ingest(plt_results[SCHEME_SHA256_V1])
    (warehouse.root / "index.json").unlink()
    rebuilt = ResultsWarehouse(warehouse.root)
    assert len(rebuilt) == 0
    assert rebuilt.reindex() == 1
    assert rebuilt.get(record.record_id).meta == record.meta


# -- query -------------------------------------------------------------------------


def test_query_filters_on_index_metadata(warehouse, plt_results, timeline_campaign):
    for scheme in RNG_SCHEMES:
        warehouse.ingest(plt_results[scheme])
    warehouse.ingest(timeline_campaign)
    assert len(warehouse.query()) == len(RNG_SCHEMES) + 1
    assert len(warehouse.query(kind="plt")) == len(RNG_SCHEMES)
    assert [r.rng_scheme for r in warehouse.query(kind="plt", scheme=SCHEME_SPLITMIX64_V2)] == \
        [SCHEME_SPLITMIX64_V2]
    assert len(warehouse.query(campaign_id="test-timeline-campaign")) == 1
    assert warehouse.query(profile="3g") == []
    assert warehouse.query(seed=999) == []


def test_get_resolves_prefixes_and_rejects_ambiguity(warehouse, plt_results):
    records = [warehouse.ingest(plt_results[scheme]) for scheme in RNG_SCHEMES]
    for record in records:
        assert warehouse.get(record.record_id[:10]).record_id == record.record_id
    with pytest.raises(WarehouseError, match="no record"):
        warehouse.get("ffffffffffff" * 6)
    with pytest.raises(WarehouseError, match="ambiguous"):
        warehouse.get("")


def test_record_round_trips_clean_dataset(warehouse, plt_results):
    result = plt_results[SCHEME_SHA256_V1]
    record = warehouse.ingest(result)
    reloaded = ResultsWarehouse(warehouse.root).get(record.record_id)
    dataset = reloaded.clean_dataset()
    assert dataset.response_count == result.campaign.clean_dataset.response_count
    assert dataset.rng_scheme == SCHEME_SHA256_V1
    assert dataset.network_profile == "cable-intl"
    assert reloaded.uplt_by_site() == pytest.approx(result.uplt_by_site)
    onloads = {site: m["onload"] for site, m in reloaded.metrics_by_site().items()}
    assert onloads == pytest.approx(
        {site: m.onload for site, m in result.metrics_by_site.items()}
    )


# -- compare -----------------------------------------------------------------------


def test_compare_self_is_all_zero(warehouse, plt_results):
    record = warehouse.ingest(plt_results[SCHEME_SHA256_V1])
    comparison = compare(record, record)
    assert comparison.sites
    assert all(s.uplt_delta == 0.0 for s in comparison.sites)
    assert all(s.onload_delta == 0.0 for s in comparison.sites)
    assert comparison.mean_uplt_delta == 0.0


def test_compare_across_schemes(warehouse, plt_results):
    a = warehouse.ingest(plt_results[SCHEME_SHA256_V1])
    b = warehouse.ingest(plt_results[SCHEME_SPLITMIX64_V2])
    comparison = compare(a, b)
    # Same corpus under both schemes: every site lines up, deltas are real.
    assert len(comparison.sites) == 3
    assert not comparison.sites_only_a and not comparison.sites_only_b
    assert any(s.uplt_delta != 0.0 for s in comparison.sites)
    assert "site" in comparison.table().splitlines()[0]


def test_compare_rejects_empty_sides():
    with pytest.raises(WarehouseError, match="empty record set"):
        compare([], [])


# -- stats -------------------------------------------------------------------------


def test_bootstrap_ci_is_deterministic_and_scheme_dependent():
    values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    ci_v1 = bootstrap_mean_ci(values, seed=7, rng_scheme=SCHEME_SHA256_V1, label="x")
    again = bootstrap_mean_ci(values, seed=7, rng_scheme=SCHEME_SHA256_V1, label="x")
    ci_v2 = bootstrap_mean_ci(values, seed=7, rng_scheme=SCHEME_SPLITMIX64_V2, label="x")
    assert (ci_v1.low, ci_v1.high) == (again.low, again.high)
    assert (ci_v1.low, ci_v1.high) != (ci_v2.low, ci_v2.high)
    for ci in (ci_v1, ci_v2):
        assert ci.low <= ci.point <= ci.high
        assert ci.point == pytest.approx(3.5)


def test_bootstrap_ci_edge_cases():
    single = bootstrap_mean_ci([2.5], seed=1)
    assert (single.point, single.low, single.high) == (2.5, 2.5, 2.5)
    with pytest.raises(AnalysisError):
        bootstrap_mean_ci([], seed=1)
    with pytest.raises(AnalysisError):
        bootstrap_mean_ci([1.0, 2.0], seed=1, confidence=1.5)


def test_spearman_known_values():
    assert spearman_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
    assert spearman_correlation([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)
    # Monotone but non-linear is still a perfect rank correlation.
    assert spearman_correlation([1, 2, 3, 4], [1, 8, 27, 64]) == pytest.approx(1.0)
    # Ties get average ranks.
    assert spearman_correlation([1, 1, 2], [1, 1, 2]) == pytest.approx(1.0)
    with pytest.raises(AnalysisError):
        spearman_correlation([1, 2], [1, 2, 3])
    with pytest.raises(AnalysisError):
        spearman_correlation([1, 1, 1], [1, 2, 3])


def test_fleiss_kappa_known_cases():
    perfect = fleiss_kappa([{"left": 4}, {"right": 3}])
    assert perfect.mean_pairwise_agreement == pytest.approx(1.0)
    assert perfect.fleiss_kappa == pytest.approx(1.0)
    unanimous = fleiss_kappa([{"left": 4}, {"left": 3}])  # one category overall
    assert unanimous.fleiss_kappa == pytest.approx(1.0)
    split = fleiss_kappa([{"left": 2, "right": 2}, {"left": 2, "right": 2}])
    assert split.fleiss_kappa < 0.5
    assert split.items == 2 and split.raters_total == 8
    # Items with a single rating are skipped entirely.
    skipping = fleiss_kappa([{"left": 1}, {"left": 2}])
    assert skipping.items == 1
    with pytest.raises(AnalysisError):
        fleiss_kappa([{"left": 1}])


def test_inter_rater_agreement_over_campaign(warehouse, ab_campaign):
    record = warehouse.ingest(ab_campaign, kind="h1h2")
    stats = record_stats(record)
    assert stats.agreement is not None
    assert 0.0 <= stats.agreement.mean_pairwise_agreement <= 1.0
    assert stats.agreement.fleiss_kappa <= 1.0
    assert stats.overall_uplt_ci is None  # A/B record: no timeline CIs
    report = inter_rater_agreement(ab_campaign.clean_dataset)
    assert report.mean_pairwise_agreement == stats.agreement.mean_pairwise_agreement


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_record_stats_deterministic_per_scheme(warehouse, plt_results, scheme):
    record = warehouse.ingest(plt_results[scheme])
    first = record_stats(record)
    second = record_stats(ResultsWarehouse(warehouse.root).get(record.record_id))
    assert first.overall_uplt_ci == second.overall_uplt_ci
    assert first.uplt_ci_by_site == second.uplt_ci_by_site
    assert first.spearman_by_metric == second.spearman_by_metric
    assert set(first.uplt_ci_by_site) == set(record.uplt_by_site())
    for site, ci in first.uplt_ci_by_site.items():
        assert ci.low <= ci.point <= ci.high


# -- pipeline threading ------------------------------------------------------------


def test_profile_sweep_ingests_one_record_per_profile(tmp_path):
    from repro.capture.webpeg import DEFAULT_CAPTURE_CACHE
    from repro.experiments.profile_sweep import run_profile_sweep_campaign

    warehouse = ResultsWarehouse(tmp_path / "sweep")
    DEFAULT_CAPTURE_CACHE.clear()
    try:
        sweep = run_profile_sweep_campaign(
            profiles=["fiber", "3g"], sites=3, participants=8, loads_per_site=2,
            seed=2016, warehouse=warehouse,
        )
    finally:
        DEFAULT_CAPTURE_CACHE.clear()
    assert len(warehouse) == 2
    by_profile = {r.network_profile: r for r in warehouse.query(kind="plt")}
    assert set(by_profile) == {"fiber", "3g"}
    assert by_profile["3g"].campaign_id == "profile-sweep-3g"
    # Re-ingesting the whole sweep is a no-op, record for record.
    records = warehouse.ingest(sweep)
    assert len(warehouse) == 2 and len(records) == 2
    # Cross-profile compare lines up the shared corpus.
    comparison = compare(by_profile["fiber"], by_profile["3g"])
    assert len(comparison.sites) == 3
    assert comparison.mean_uplt_delta > 0.0  # 3g is perceived slower than fiber


def test_repro_config_opens_warehouse(tmp_path):
    from repro.config import ReproConfig
    from repro.errors import ConfigurationError

    assert ReproConfig().make_warehouse() is None
    warehouse = ReproConfig(warehouse_dir=str(tmp_path / "wh")).make_warehouse()
    assert isinstance(warehouse, ResultsWarehouse)
    assert len(warehouse) == 0
    with pytest.raises(ConfigurationError):
        ReproConfig(warehouse_dir="   ")


# -- canonical serialisation -------------------------------------------------------


def test_canonical_json_is_key_order_independent():
    a = {"b": 1, "a": {"y": 2.5, "x": [1, 2]}}
    b = {"a": {"x": [1, 2], "y": 2.5}, "b": 1}
    assert canonical_json(a) == canonical_json(b)
    assert record_id_for(a) == record_id_for(b)
    assert record_id_for(a) != record_id_for({"b": 2, "a": {"y": 2.5, "x": [1, 2]}})
