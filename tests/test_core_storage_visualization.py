"""Tests for dataset storage and the text visualisation tools."""

from __future__ import annotations

import pytest

from repro.core.analysis import uplt_values
from repro.core.storage import (
    ab_responses_csv,
    dataset_from_dict,
    dataset_to_dict,
    export_csv,
    load_dataset,
    save_dataset,
    timeline_responses_csv,
)
from repro.core.visualization import cdf_plot, histogram, response_timeline, score_summary
from repro.errors import AnalysisError, StorageError


# -- storage -----------------------------------------------------------------------


def test_dataset_dict_round_trip(timeline_campaign):
    dataset = timeline_campaign.raw_dataset
    rebuilt = dataset_from_dict(dataset_to_dict(dataset))
    assert rebuilt.participant_count == dataset.participant_count
    assert len(rebuilt.timeline_responses) == len(dataset.timeline_responses)
    assert rebuilt.campaign_id == dataset.campaign_id
    original = [r.submitted_time for r in dataset.timeline_responses]
    restored = [r.submitted_time for r in rebuilt.timeline_responses]
    assert original == pytest.approx(restored)


def test_dataset_json_file_round_trip(tmp_path, ab_campaign):
    path = tmp_path / "ab.json"
    save_dataset(ab_campaign.raw_dataset, path)
    loaded = load_dataset(path)
    assert len(loaded.ab_responses) == len(ab_campaign.raw_dataset.ab_responses)
    assert loaded.participants.keys() == ab_campaign.raw_dataset.participants.keys()


def test_load_dataset_missing_file(tmp_path):
    with pytest.raises(StorageError):
        load_dataset(tmp_path / "missing.json")


def test_load_dataset_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(StorageError):
        load_dataset(path)


def test_dataset_from_dict_missing_keys():
    with pytest.raises(StorageError):
        dataset_from_dict({"campaign_id": "x"})


def test_csv_exports(tmp_path, timeline_campaign, ab_campaign):
    timeline_csv = timeline_responses_csv(timeline_campaign.raw_dataset)
    assert timeline_csv.splitlines()[0].startswith("participant_id,video_id")
    assert len(timeline_csv.splitlines()) == len(timeline_campaign.raw_dataset.timeline_responses) + 1
    ab_csv = ab_responses_csv(ab_campaign.raw_dataset)
    assert len(ab_csv.splitlines()) == len(ab_campaign.raw_dataset.ab_responses) + 1

    timeline_path = tmp_path / "timeline.csv"
    export_csv(timeline_campaign.raw_dataset, timeline_path)
    assert timeline_path.exists()
    ab_path = tmp_path / "ab.csv"
    export_csv(ab_campaign.raw_dataset, ab_path)
    assert ab_path.read_text(encoding="utf-8").startswith("participant_id,pair_id")


def test_csv_exports_carry_scheme_and_profile_columns(timeline_campaign, ab_campaign):
    """Sweep exports are unambiguous: every row names its scheme + profile."""
    import csv
    import io

    for dataset, csv_fn in ((timeline_campaign.raw_dataset, timeline_responses_csv),
                            (ab_campaign.raw_dataset, ab_responses_csv)):
        rows = list(csv.DictReader(io.StringIO(csv_fn(dataset))))
        assert rows
        # Campaign-produced datasets record their provenance...
        assert all(row["rng_scheme"] == dataset.rng_scheme for row in rows)
        assert {row["network_profile"] for row in rows} == {dataset.network_profile or ""}


def test_csv_provenance_columns_empty_for_unrecorded_datasets():
    from repro.core.responses import ResponseDataset

    dataset = ResponseDataset(campaign_id="bare", experiment_type="timeline")
    header = timeline_responses_csv(dataset).splitlines()[0]
    assert header.endswith("rng_scheme,network_profile")


def test_dataset_round_trip_preserves_provenance(timeline_campaign):
    dataset = timeline_campaign.clean_dataset
    assert dataset.rng_scheme == timeline_campaign.config.rng_scheme
    rebuilt = dataset_from_dict(dataset_to_dict(dataset))
    assert rebuilt.rng_scheme == dataset.rng_scheme
    assert rebuilt.network_profile == dataset.network_profile
    # CSV rendered from the round-tripped dataset is byte-identical.
    assert timeline_responses_csv(rebuilt) == timeline_responses_csv(dataset)
    # Pre-provenance dictionaries (older exports) still load, as unrecorded.
    legacy = dataset_to_dict(dataset)
    del legacy["rng_scheme"], legacy["network_profile"]
    assert dataset_from_dict(legacy).rng_scheme is None


def test_filtered_and_merged_datasets_keep_provenance(timeline_campaign):
    dataset = timeline_campaign.raw_dataset
    subset = dataset.filtered(list(dataset.participants)[:3])
    assert subset.rng_scheme == dataset.rng_scheme
    assert subset.network_profile == dataset.network_profile
    merged = dataset.merge(subset)
    assert merged.rng_scheme == dataset.rng_scheme
    other = dataset_from_dict(dataset_to_dict(dataset))
    other.rng_scheme = "splitmix64-v2"
    assert dataset.merge(other).rng_scheme is None  # mixed provenance is dropped


# -- visualisation -----------------------------------------------------------------


def test_response_timeline_render(timeline_campaign, timeline_experiment):
    dataset = timeline_campaign.raw_dataset
    video = timeline_experiment.videos[0]
    responses = uplt_values(dataset, video.video_id)
    text = response_timeline(video, responses, width=60)
    assert video.video_id in text
    assert "O" in text  # onload marker
    assert len(text.splitlines()) >= 5
    with pytest.raises(AnalysisError):
        response_timeline(video, [], width=60)
    with pytest.raises(AnalysisError):
        response_timeline(video, responses, width=5)


def test_histogram_render():
    text = histogram([1.0, 1.1, 2.0, 2.1, 5.0], bins=4, title="sample")
    assert text.splitlines()[0] == "sample"
    assert len(text.splitlines()) == 5
    with pytest.raises(AnalysisError):
        histogram([], bins=4)
    with pytest.raises(AnalysisError):
        histogram([1.0], bins=0)


def test_cdf_plot_render():
    text = cdf_plot({"paid": [1, 2, 3, 4], "trusted": [2, 3, 4, 5]}, width=30, height=8, title="cdf")
    lines = text.splitlines()
    assert lines[0] == "cdf"
    assert any("paid" in line for line in lines)
    with pytest.raises(AnalysisError):
        cdf_plot({})
    with pytest.raises(AnalysisError):
        cdf_plot({"x": []})


def test_score_summary_text():
    text = score_summary({"a": 0.9, "b": 0.1, "c": 0.5}, label="h2 vs h1")
    assert "h2 vs h1" in text
    assert "score>=0.8: 33%" in text
    with pytest.raises(AnalysisError):
        score_summary({}, label="x")
