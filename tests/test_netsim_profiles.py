"""Tests for network emulation profiles."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.netsim.profiles import BUILTIN_PROFILES, get_profile, list_profiles


def test_expected_profiles_exist():
    for name in ("fiber", "cable", "cable-intl", "dsl", "3g", "4g", "slow-2g"):
        assert name in BUILTIN_PROFILES


def test_get_profile_returns_named_profile():
    profile = get_profile("cable")
    assert profile.name == "cable"
    assert profile.latency.base_rtt > 0
    assert profile.bandwidth.downlink_bps > 0


def test_unknown_profile_raises():
    with pytest.raises(ConfigurationError):
        get_profile("carrier-pigeon")


def test_list_profiles_sorted():
    names = list_profiles()
    assert names == sorted(names)
    assert "cable-intl" in names


def test_mobile_profiles_slower_than_fixed():
    assert get_profile("3g").latency.base_rtt > get_profile("cable").latency.base_rtt
    assert get_profile("3g").bandwidth.downlink_bps < get_profile("cable").bandwidth.downlink_bps


def test_cable_intl_has_higher_rtt_same_bandwidth():
    cable = get_profile("cable")
    intl = get_profile("cable-intl")
    assert intl.latency.base_rtt > cable.latency.base_rtt
    assert intl.bandwidth.downlink_bps == cable.bandwidth.downlink_bps
