"""Tests for the demographic sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.core.demographics_analysis import (
    GROUPERS,
    ab_sensitivity_by_group,
    most_sensitive_group,
    timeline_stats_by_group,
)
from repro.errors import AnalysisError


def test_ab_sensitivity_by_gender(ab_campaign):
    sensitivities = ab_sensitivity_by_group(ab_campaign.clean_dataset, treatment_label="h2",
                                            group_by="gender")
    groups = {s.group for s in sensitivities}
    assert groups <= {"male", "female"}
    assert groups
    for entry in sensitivities:
        assert entry.responses > 0
        assert 0.0 <= entry.treatment_preference <= 1.0
        assert 0.0 <= entry.no_difference_rate <= 1.0


def test_ab_sensitivity_all_groupers(ab_campaign):
    for name in GROUPERS:
        sensitivities = ab_sensitivity_by_group(ab_campaign.clean_dataset, "h2", group_by=name)
        assert sensitivities
        total = sum(s.responses for s in sensitivities)
        non_control = sum(1 for r in ab_campaign.clean_dataset.ab_responses if not r.is_control)
        assert total == non_control


def test_ab_sensitivity_custom_grouper(ab_campaign):
    sensitivities = ab_sensitivity_by_group(
        ab_campaign.clean_dataset, "h2", group_by=lambda p: p.browser
    )
    assert sensitivities
    assert all(s.group in ("chrome", "firefox", "safari", "edge", "opera") for s in sensitivities)


def test_ab_sensitivity_unknown_grouping(ab_campaign):
    with pytest.raises(AnalysisError):
        ab_sensitivity_by_group(ab_campaign.clean_dataset, "h2", group_by="favourite-colour")


def test_ab_sensitivity_requires_ab_data(timeline_campaign):
    with pytest.raises(AnalysisError):
        ab_sensitivity_by_group(timeline_campaign.clean_dataset, "h2")


def test_timeline_stats_by_group(timeline_campaign):
    stats = timeline_stats_by_group(timeline_campaign.clean_dataset, group_by="age_band")
    assert stats
    for values in stats.values():
        assert values["responses"] >= 1
        assert values["mean"] > 0
        assert values["median"] > 0


def test_timeline_stats_requires_timeline_data(ab_campaign):
    with pytest.raises(AnalysisError):
        timeline_stats_by_group(ab_campaign.clean_dataset)


def test_most_sensitive_group(ab_campaign):
    sensitivities = ab_sensitivity_by_group(ab_campaign.clean_dataset, "h2", group_by="connection")
    best = most_sensitive_group(sensitivities)
    assert best in sensitivities
    with pytest.raises(AnalysisError):
        most_sensitive_group([])
