"""Tests for the response-filtering pipeline (§4.3)."""

from __future__ import annotations

import pytest

from repro.core.responses import ResponseDataset, TimelineResponse
from repro.core.session import SessionTelemetry
from repro.core.validation import (
    DEFAULT_ACTION_THRESHOLD,
    TRUSTED_MAX_ACTIONS,
    FilterConfig,
    FilteringPipeline,
    percentile,
)
from repro.crowd.behavior import VideoInteraction
from repro.errors import ValidationError


def make_interaction(**kwargs) -> VideoInteraction:
    defaults = dict(
        video_transfer_seconds=1.0,
        watch_seconds=20.0,
        instruction_seconds=5.0,
        out_of_focus_seconds=0.0,
        play_actions=1,
        pause_actions=0,
        seek_actions=5,
        watched_video=True,
    )
    defaults.update(kwargs)
    return VideoInteraction(**defaults)


def make_response(participant_id: str, video_id: str, submitted: float) -> TimelineResponse:
    return TimelineResponse(
        participant_id=participant_id,
        video_id=video_id,
        site_id=video_id,
        slider_time=submitted,
        helper_time=submitted,
        submitted_time=submitted,
        saw_control_frame=False,
        control_passed=None,
        interaction=make_interaction(),
    )


def make_telemetry(participant_id: str, **kwargs) -> SessionTelemetry:
    defaults = dict(
        participant_id=participant_id,
        time_on_site_seconds=120.0,
        total_actions=30,
        out_of_focus_seconds=0.0,
        videos_assigned=6,
        videos_skipped=0,
        max_video_transfer_seconds=2.0,
        controls_seen=1,
        controls_passed=1,
    )
    defaults.update(kwargs)
    return SessionTelemetry(**defaults)


# -- percentile helper --------------------------------------------------------------


def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == pytest.approx(1.0)
    assert percentile(values, 100) == pytest.approx(4.0)
    assert percentile(values, 50) == pytest.approx(2.5)


def test_percentile_errors():
    with pytest.raises(ValidationError):
        percentile([], 50)
    with pytest.raises(ValidationError):
        percentile([1.0], 150)


# -- filter constants --------------------------------------------------------------


def test_action_threshold_matches_paper():
    assert TRUSTED_MAX_ACTIONS == 369
    assert DEFAULT_ACTION_THRESHOLD == int(369 * 1.5)


def test_filter_config_validation():
    with pytest.raises(ValidationError):
        FilterConfig(wisdom_low_percentile=80, wisdom_high_percentile=20)
    with pytest.raises(ValidationError):
        FilterConfig(action_threshold=0)


# -- individual filters --------------------------------------------------------------


def test_engagement_filter_on_action_count():
    pipeline = FilteringPipeline()
    telemetry = {
        "ok": make_telemetry("ok", total_actions=100),
        "frenetic": make_telemetry("frenetic", total_actions=900),
    }
    assert pipeline.engagement_violations(telemetry) == ["frenetic"]


def test_engagement_filter_on_focus_with_transfer_grace():
    pipeline = FilteringPipeline()
    telemetry = {
        "distracted": make_telemetry("distracted", out_of_focus_seconds=30.0, max_video_transfer_seconds=2.0),
        "excused": make_telemetry("excused", out_of_focus_seconds=30.0, max_video_transfer_seconds=60.0),
    }
    assert pipeline.engagement_violations(telemetry) == ["distracted"]


def test_soft_rule_filter():
    pipeline = FilteringPipeline()
    telemetry = {
        "ok": make_telemetry("ok"),
        "skipper": make_telemetry("skipper", videos_skipped=1),
    }
    assert pipeline.soft_rule_violations(telemetry) == ["skipper"]


def test_control_filter():
    pipeline = FilteringPipeline()
    telemetry = {
        "ok": make_telemetry("ok", controls_seen=2, controls_passed=2),
        "failed": make_telemetry("failed", controls_seen=2, controls_passed=1),
        "unseen": make_telemetry("unseen", controls_seen=0, controls_passed=0),
    }
    assert pipeline.control_violations(telemetry) == ["failed"]


def test_wisdom_filter_keeps_percentile_window():
    dataset = ResponseDataset(campaign_id="c", experiment_type="timeline")
    values = list(range(1, 21))  # 1..20 seconds
    for index, value in enumerate(values):
        dataset.add_timeline_response(make_response(f"p{index}", "v1", float(value)))
    pipeline = FilteringPipeline(FilterConfig(wisdom_low_percentile=25, wisdom_high_percentile=75))
    filtered, dropped = pipeline.wisdom_filter(dataset)
    kept_values = [r.submitted_time for r in filtered.timeline_responses]
    assert dropped == 20 - len(kept_values)
    assert min(kept_values) >= percentile([float(v) for v in values], 25) - 1e-9
    assert max(kept_values) <= percentile([float(v) for v in values], 75) + 1e-9


def test_full_pipeline_reports_and_cleans(timeline_campaign):
    report = timeline_campaign.filter_report
    dataset = timeline_campaign.raw_dataset
    clean = timeline_campaign.clean_dataset
    assert report.initial_participants == dataset.participant_count
    assert set(report.kept_participants).isdisjoint(
        set(report.dropped_engagement) | set(report.dropped_soft) | set(report.dropped_control)
    )
    assert clean.participant_count <= dataset.participant_count
    assert len(clean.timeline_responses) <= len(dataset.timeline_responses)
    assert 0.0 <= report.drop_fraction <= 0.6
    summary = report.summary_row()
    assert set(summary) == {"engagement", "soft", "control"}


def test_pipeline_toggles():
    config = FilterConfig(apply_engagement=False, apply_soft_rules=False,
                          apply_controls=False, apply_wisdom=False)
    pipeline = FilteringPipeline(config)
    dataset = ResponseDataset(campaign_id="c", experiment_type="timeline")
    from repro.crowd.participant import ParticipantClass, generate_participant
    from repro.rng import SeededRNG

    participant = generate_participant("p1", ParticipantClass.PAID, "crowdflower", SeededRNG(1))
    dataset.add_participant(participant)
    dataset.add_timeline_response(make_response("p1", "v1", 2.0))
    telemetry = {"p1": make_telemetry("p1", total_actions=10_000, videos_skipped=3, controls_passed=0)}
    clean, report = pipeline.run(dataset, telemetry)
    assert report.dropped_total == 0
    assert len(clean.timeline_responses) == 1
