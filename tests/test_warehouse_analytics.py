"""Tests for the longitudinal analytics layer: trends, drift, and triage.

The hard contracts here are determinism contracts: trend and triage
reports over the same warehouse are byte-identical across repeated runs
and across ingest-order permutations, and every triage verdict is a pure
function of the record body.  The suite is tier-1 and carries the
``analytics`` marker (`-m analytics` selects the whole family).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import AnalysisError, WarehouseError
from repro.rng import (
    RNG_SCHEMES,
    SCHEME_SHA256_V1,
    SCHEME_SPLITMIX64_BATCH_V3,
)
from repro.warehouse import (
    ResultsWarehouse,
    bootstrap_mean_ci,
    canonical_json,
    compute_trend,
    detect_drift,
    fleiss_kappa,
    ingest_trend,
    ingest_triage,
    spearman_correlation,
    trend_points,
    trend_record_body,
    triage_body,
    triage_record,
    triage_record_body,
    triage_warehouse,
)
from repro.warehouse.triage import (
    BUCKET_HEALTHY,
    BUCKET_LOW_AGREEMENT,
    BUCKET_NEEDS_REVIEW,
    HINT_ORDER,
    MIN_CONFIDENCE,
    resolve_auto_triage,
)

pytestmark = pytest.mark.analytics

CAMPAIGN_ID = "analytics-test"
SEEDS = (2016, 2017)


@pytest.fixture(scope="module")
def campaign_results():
    """Two tiny PLT campaigns (consecutive seeds) per RNG scheme."""
    from repro.capture.webpeg import DEFAULT_CAPTURE_CACHE
    from repro.experiments.plt_campaign import run_plt_campaign

    results = {}
    for scheme in RNG_SCHEMES:
        runs = []
        for seed in SEEDS:
            DEFAULT_CAPTURE_CACHE.clear()
            runs.append(run_plt_campaign(
                sites=3, participants=10, loads_per_site=2, seed=seed,
                rng_scheme=scheme, campaign_id=CAMPAIGN_ID,
            ))
        results[scheme] = runs
    DEFAULT_CAPTURE_CACHE.clear()
    return results


def _filled_warehouse(tmp_path, campaign_results, scheme, name="wh", reverse=False):
    warehouse = ResultsWarehouse(tmp_path / name)
    runs = campaign_results[scheme]
    for result in (reversed(runs) if reverse else runs):
        warehouse.ingest(result)
    return warehouse


# -- trend determinism -------------------------------------------------------------


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_trend_report_is_byte_identical_across_runs(tmp_path, campaign_results, scheme):
    warehouse = _filled_warehouse(tmp_path, campaign_results, scheme)
    first = compute_trend(warehouse.records(), campaign_id=CAMPAIGN_ID)
    second = compute_trend(warehouse.records(), campaign_id=CAMPAIGN_ID)
    assert canonical_json(trend_record_body(first)) == canonical_json(trend_record_body(second))
    assert [p.seed for p in first.points] == list(SEEDS)
    assert first.drift is not None
    assert len(first.site_trajectories) == 3


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_trend_and_triage_stable_under_ingest_order_permutation(
        tmp_path, campaign_results, scheme):
    forward = _filled_warehouse(tmp_path, campaign_results, scheme, "fwd")
    backward = _filled_warehouse(tmp_path, campaign_results, scheme, "bwd", reverse=True)
    trend_fwd = trend_record_body(compute_trend(forward.records()))
    trend_bwd = trend_record_body(compute_trend(backward.records()))
    assert canonical_json(trend_fwd) == canonical_json(trend_bwd)
    triage_fwd = triage_record_body(triage_warehouse(forward))
    triage_bwd = triage_record_body(triage_warehouse(backward))
    assert canonical_json(triage_fwd) == canonical_json(triage_bwd)


def test_trend_points_skip_analytics_records(tmp_path, campaign_results):
    warehouse = _filled_warehouse(tmp_path, campaign_results, SCHEME_SHA256_V1)
    report = compute_trend(warehouse.records())
    ingest_trend(warehouse, report)
    ingest_triage(warehouse, triage_warehouse(warehouse))
    assert len(warehouse) == 4
    # Analytics records never feed back into the next trend or triage run.
    assert len(trend_points(warehouse.records())) == 2
    assert len(triage_warehouse(warehouse).verdicts) == 2


def test_analytics_reingest_is_idempotent_and_new_inputs_get_new_campaign(
        tmp_path, campaign_results):
    warehouse = _filled_warehouse(tmp_path, campaign_results, SCHEME_SHA256_V1)
    first = ingest_triage(warehouse, triage_warehouse(warehouse))
    again = ingest_triage(warehouse, triage_warehouse(warehouse))
    assert first.record_id == again.record_id  # same inputs: idempotent no-op
    # A changed source set derives a *new* campaign id instead of tripping
    # the append-only conflict check.
    warehouse.ingest(campaign_results[SCHEME_SPLITMIX64_BATCH_V3][0])
    grown = ingest_triage(warehouse, triage_warehouse(warehouse))
    assert grown.record_id != first.record_id
    assert grown.campaign_id != first.campaign_id
    assert grown.rng_scheme == "mixed"


def test_trend_empty_selection_raises(tmp_path, campaign_results):
    warehouse = _filled_warehouse(tmp_path, campaign_results, SCHEME_SHA256_V1)
    with pytest.raises(AnalysisError, match="no campaign records"):
        compute_trend(warehouse.records(), campaign_id="no-such-campaign")
    with pytest.raises(AnalysisError, match="no campaign records"):
        triage_warehouse(warehouse, kind="h1h2")


# -- drift detection ---------------------------------------------------------------


def test_drift_report_attributes_the_shift(tmp_path, campaign_results):
    warehouse = _filled_warehouse(tmp_path, campaign_results, SCHEME_SHA256_V1)
    a, b = trend_points(warehouse.records())
    drift = detect_drift(a, b)
    assert drift.points_a == drift.points_b == 1
    assert drift.delta == pytest.approx(b.mean_uplt - a.mean_uplt)
    assert drift.ci_overlap in (True, False)
    # Attribution covers every common site plus the shared profile/scheme
    # axes, ranked by magnitude (largest first).
    dims = {entry.dimension for entry in drift.attribution}
    assert dims == {"site", "network_profile", "rng_scheme"}
    magnitudes = [abs(entry.delta) for entry in drift.attribution]
    assert magnitudes == sorted(magnitudes, reverse=True)
    # Self-drift is a null result.
    self_drift = detect_drift(a, a)
    assert not self_drift.drifted and self_drift.delta == 0.0


def test_drift_rejects_bad_inputs(tmp_path, campaign_results):
    warehouse = _filled_warehouse(tmp_path, campaign_results, SCHEME_SHA256_V1)
    point = trend_points(warehouse.records())[0]
    with pytest.raises(AnalysisError, match="side B"):
        detect_drift(point, [])
    with pytest.raises(AnalysisError, match="threshold"):
        detect_drift(point, point, threshold=0.0)


# -- triage purity -----------------------------------------------------------------


def test_triage_verdict_is_pure_function_of_the_body(tmp_path, campaign_results):
    warehouse = _filled_warehouse(tmp_path, campaign_results, SCHEME_SHA256_V1)
    record = warehouse.records()[0]
    body = record.load()
    direct = triage_record(record)
    # Same verdict from the bare body, and from a key-order permutation of
    # it: the engine never depends on dict iteration order.
    shuffled = json.loads(canonical_json(dict(reversed(list(body.items())))))
    assert triage_body(body, record.record_id).as_dict() == direct.as_dict()
    assert triage_body(shuffled, record.record_id).as_dict() == direct.as_dict()
    assert tuple(h.name for h in direct.hints) == HINT_ORDER


def _synthetic_timeline_body(uplt, onload):
    return {
        "campaign_id": "synthetic",
        "kind": "plt",
        "experiment_type": "timeline",
        "rng_scheme": SCHEME_SHA256_V1,
        "seed": 7,
        "scale": {"participants": 10, "sites": len(uplt), "videos_per_participant": 1},
        "videos_served": 40,
        "filter_summary": {"speed": 2},
        "uplt_by_site": {site: repr(value) for site, value in uplt.items()},
        "metrics_by_site": {site: {"onload": repr(value)} for site, value in onload.items()},
    }


def test_clean_synthetic_record_is_healthy():
    uplt = {"site-000": 3.0, "site-001": 3.1, "site-002": 3.2, "site-003": 3.3}
    onload = {site: value - 1.0 for site, value in uplt.items()}  # rank-aligned
    verdict = triage_body(_synthetic_timeline_body(uplt, onload), "0" * 64)
    assert verdict.bucket == BUCKET_HEALTHY
    assert not verdict.flagged
    assert verdict.score == 0.0
    assert verdict.confidence >= MIN_CONFIDENCE
    assert all(hint.available for hint in verdict.hints)


def test_conflicting_hints_are_flagged_and_routed_to_review():
    # Agreement fires (UPLT anti-correlated with OnLoad) and filtering
    # fires (half the served tasks rejected): no bucket dominates, so the
    # verdict is low-confidence — flagged and routed, never silently
    # bucketed.
    uplt = {"site-000": 3.0, "site-001": 3.1, "site-002": 3.2, "site-003": 3.3}
    onload = {site: 10.0 - value for site, value in uplt.items()}  # anti-correlated
    body = _synthetic_timeline_body(uplt, onload)
    body["filter_summary"] = {"speed": 12, "honesty": 8}
    verdict = triage_body(body, "1" * 64)
    assert verdict.score == pytest.approx(0.65)
    assert verdict.provisional_bucket == BUCKET_LOW_AGREEMENT
    assert verdict.confidence == pytest.approx(0.35 / 0.65)
    assert verdict.confidence < MIN_CONFIDENCE
    assert verdict.flagged
    assert verdict.bucket == BUCKET_NEEDS_REVIEW


def test_unavailable_hints_discount_confidence():
    # One site only: the agreement hint cannot be evaluated, so even an
    # otherwise-clean record loses that weight from its confidence.
    verdict = triage_body(
        _synthetic_timeline_body({"site-000": 3.0}, {"site-000": 2.0}), "2" * 64)
    agreement = verdict.hints[0]
    assert agreement.name == "agreement" and not agreement.available
    assert verdict.bucket == BUCKET_HEALTHY
    assert verdict.confidence == pytest.approx(1.0 - agreement.weight)


def test_triage_report_counts_every_bucket(tmp_path, campaign_results):
    warehouse = _filled_warehouse(tmp_path, campaign_results, SCHEME_SHA256_V1)
    report = triage_warehouse(warehouse)
    counts = report.bucket_counts
    assert set(counts) == {BUCKET_HEALTHY, BUCKET_LOW_AGREEMENT,
                           "suspect-filtering", BUCKET_NEEDS_REVIEW}
    assert sum(counts.values()) == len(report.verdicts) == 2
    assert report.as_dict()["engine"]["resamples"] == report.resamples


# -- driver threading --------------------------------------------------------------


def test_resolve_auto_triage_explicit_wins_and_none_reads_config(monkeypatch):
    import repro.config

    assert resolve_auto_triage(True) is True
    assert resolve_auto_triage(False) is False
    assert resolve_auto_triage(None) is False  # library default
    monkeypatch.setattr(repro.config, "DEFAULT_CONFIG",
                        repro.config.ReproConfig(auto_triage=True))
    assert resolve_auto_triage(None) is True
    assert resolve_auto_triage(False) is False  # explicit still wins


def test_plt_driver_stores_triage_record_when_asked(tmp_path):
    from repro.capture.webpeg import DEFAULT_CAPTURE_CACHE
    from repro.experiments.plt_campaign import run_plt_campaign

    warehouse = ResultsWarehouse(tmp_path / "wh")
    DEFAULT_CAPTURE_CACHE.clear()
    try:
        run_plt_campaign(sites=3, participants=8, loads_per_site=2, seed=2016,
                         warehouse=warehouse, triage=True)
    finally:
        DEFAULT_CAPTURE_CACHE.clear()
    kinds = sorted(r.kind for r in warehouse.records())
    assert kinds == ["plt", "triage"]
    triage = warehouse.query(kind="triage")[0]
    assert triage.experiment_type == "analytics"
    assert triage.load()["sources"] == [warehouse.query(kind="plt")[0].record_id]


# -- stats edge-case pins (tier-1 hardening) ---------------------------------------


def test_spearman_rejects_constant_and_all_tied_series():
    with pytest.raises(AnalysisError, match="sample x is constant"):
        spearman_correlation([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])
    with pytest.raises(AnalysisError, match="sample y is constant"):
        spearman_correlation([1.0, 2.0, 3.0], [5.0, 5.0, 5.0])
    with pytest.raises(AnalysisError, match="constant"):
        spearman_correlation([1.0, 1.0], [1.0, 1.0])  # all tied on both sides
    with pytest.raises(AnalysisError, match="at least two"):
        spearman_correlation([1.0], [1.0])


def test_fleiss_kappa_single_rater_and_single_category():
    # Single rater per item: no pair to agree, typed error (not NaN).
    with pytest.raises(AnalysisError):
        fleiss_kappa([{"left": 1}, {"right": 1}])
    # One category overall: expected agreement is 1, kappa pins to 1.
    assert fleiss_kappa([{"left": 3}, {"left": 2}]).fleiss_kappa == pytest.approx(1.0)
    with pytest.raises(AnalysisError):
        fleiss_kappa([])


@pytest.mark.parametrize("scheme", (SCHEME_SHA256_V1, SCHEME_SPLITMIX64_BATCH_V3))
def test_bootstrap_edge_cases_per_scheme(scheme):
    with pytest.raises(AnalysisError, match="empty"):
        bootstrap_mean_ci([], seed=1, rng_scheme=scheme)
    single = bootstrap_mean_ci([4.25], seed=1, rng_scheme=scheme)
    assert (single.point, single.low, single.high) == (4.25, 4.25, 4.25)
    with pytest.raises(AnalysisError):
        bootstrap_mean_ci([1.0, 2.0], seed=1, rng_scheme=scheme, resamples=0)


# -- compare hardening (query layer) ----------------------------------------------


def test_compare_disjoint_record_sets_raises_with_side_labels(
        tmp_path, campaign_results, ab_campaign):
    warehouse = _filled_warehouse(tmp_path, campaign_results, SCHEME_SHA256_V1)
    from repro.warehouse import compare

    plt_record = warehouse.query(kind="plt")[0]
    ab_record = warehouse.ingest(ab_campaign, kind="h1h2")  # stores no per-site UPLT
    with pytest.raises(WarehouseError, match="disjoint") as excinfo:
        compare(plt_record, ab_record)
    message = str(excinfo.value)
    assert "side A" in message and "side B" in message
    assert CAMPAIGN_ID in message and "test-ab-campaign" in message
