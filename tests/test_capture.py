"""Tests for the webpeg capture substrate: frames, videos, splicing, capture tool."""

from __future__ import annotations

import pytest

from repro.capture.frames import frames_from_timeline
from repro.capture.pixeldiff import control_frame, frames_similar, pixel_difference, rewind_suggestion
from repro.capture.video import control_splice, splice
from repro.capture.webpeg import CaptureSettings, Webpeg, capture_adblock_set, capture_protocol_pair
from repro.errors import CaptureError, VideoError


# -- frames ------------------------------------------------------------------------


def test_frames_sampled_at_fps(load_result):
    frames = frames_from_timeline(load_result.render_timeline, fps=10, duration=5.0)
    assert frames.fps == 10
    assert frames.frame_count >= 50
    assert frames.duration >= 5.0 - 0.2


def test_frame_completeness_monotonic(video):
    previous = -1.0
    for frame in video.frames.frames:
        assert frame.completeness >= previous - 1e-12
        previous = frame.completeness
    assert video.frames.frames[-1].completeness == pytest.approx(1.0)


def test_frame_at_clamps(video):
    assert video.frames.frame_at(-5.0).index == 0
    assert video.frames.frame_at(video.duration + 100).index == video.frames.frame_count - 1


def test_invalid_frame_buffer_settings(load_result):
    with pytest.raises(VideoError):
        frames_from_timeline(load_result.render_timeline, fps=10, duration=0.0)


# -- pixel diff / frame helper -------------------------------------------------------


def test_pixel_difference_zero_for_same_frame(video):
    frame = video.frame_at(video.onload)
    assert pixel_difference(frame, frame, video.frames.viewport_pixels) == 0.0
    assert frames_similar(frame, frame, video.frames.viewport_pixels)


def test_rewind_suggestion_is_earlier_and_similar(video):
    chosen_time = video.onload + 1.0
    suggestion = rewind_suggestion(video.frames, chosen_time)
    chosen = video.frame_at(chosen_time)
    assert suggestion.timestamp <= chosen.timestamp
    assert pixel_difference(chosen, suggestion, video.frames.viewport_pixels) <= 0.011


def test_control_frame_is_drastically_different(video):
    chosen_time = video.onload + 1.0
    control = control_frame(video.frames, chosen_time, minimum_difference=0.5)
    if control is not None:
        chosen = video.frame_at(chosen_time)
        assert pixel_difference(chosen, control, video.frames.viewport_pixels) >= 0.5


def test_control_frame_invalid_threshold(video):
    with pytest.raises(VideoError):
        control_frame(video.frames, 1.0, minimum_difference=0.0)


# -- videos ------------------------------------------------------------------------


def test_video_basic_properties(video):
    assert video.duration > video.onload
    assert video.size_bytes > 100_000
    assert video.configuration == "h2"


def test_video_flagging_bans_after_threshold(video):
    for index in range(4):
        assert not video.flag_broken(f"w{index}", threshold=5)
    assert video.flag_broken("w4", threshold=5)
    assert video.banned


def test_splice_properties(video_pair):
    h1, h2 = video_pair
    site = sorted(h1)[0]
    spliced = splice("s1", h1[site], h2[site], "h1", "h2")
    assert spliced.duration == pytest.approx(max(h1[site].duration, h2[site].duration))
    assert spliced.size_bytes > max(h1[site].size_bytes, h2[site].size_bytes)
    assert not spliced.is_control
    assert spliced.faster_side() in ("left", "right", "tie")


def test_control_splice_delayed_side_loses(video):
    control = control_splice("c1", video, delayed_side="right", delay=3.0)
    assert control.is_control
    assert control.faster_side() == "left"
    assert control.side_onload("right") == pytest.approx(video.onload + 3.0)
    control_left = control_splice("c2", video, delayed_side="left", delay=3.0)
    assert control_left.faster_side() == "right"


def test_control_splice_invalid_side(video):
    with pytest.raises(VideoError):
        control_splice("c3", video, delayed_side="top")


# -- webpeg ------------------------------------------------------------------------


def test_capture_settings_validation():
    with pytest.raises(CaptureError):
        CaptureSettings(loads_per_site=0)
    with pytest.raises(CaptureError):
        CaptureSettings(record_after_onload=-1.0)
    with pytest.raises(CaptureError):
        CaptureSettings(fps=0)


def test_capture_selects_median_onload(page, capture_settings):
    tool = Webpeg(settings=CaptureSettings(loads_per_site=5, network_profile="cable-intl"), seed=7)
    report = tool.capture(page, configuration="h2")
    assert len(report.onload_times) == 5
    ordered = sorted(report.onload_times)
    median = ordered[2]
    assert report.video.onload == pytest.approx(
        min(report.onload_times, key=lambda v: abs(v - median))
    )
    assert report.primer_performed


def test_capture_video_covers_record_after_onload(video, capture_settings):
    assert video.duration >= video.load_result.fully_loaded + capture_settings.record_after_onload - 0.2


def test_capture_batch(pages, capture_settings):
    tool = Webpeg(settings=capture_settings, seed=7)
    reports = tool.capture_batch(pages[:2], configuration="h2")
    assert set(reports) == {p.site_id for p in pages[:2]}
    with pytest.raises(CaptureError):
        tool.capture_batch([], configuration="h2")


def test_capture_protocol_pair_labels(page, capture_settings):
    reports = capture_protocol_pair(page, settings=capture_settings, seed=7)
    assert set(reports) == {"h1", "h2"}
    assert reports["h1"].video.load_result.protocol == "http/1.1"
    assert reports["h2"].video.load_result.protocol == "h2"


def test_capture_adblock_set(corpus, capture_settings):
    ad_page = corpus.generate_page("adsite-00099", displays_ads=True)
    reports = capture_adblock_set(ad_page, blockers=("ghostery",), settings=capture_settings, seed=7)
    assert set(reports) == {"noextension", "ghostery"}
    assert len(reports["ghostery"].video.load_result.blocked_object_ids) > 0
    assert len(reports["noextension"].video.load_result.blocked_object_ids) == 0


def test_pixel_difference_semantics_pinned(video):
    """Regression pin for Frame.pixel_difference (see its docstring).

    The difference is |painted_pixels_a - painted_pixels_b| / viewport when
    the painted object sets differ, and exactly 0.0 when they are equal —
    in particular, frames painting *disjoint* object sets of equal total
    area compare as identical (counts, not sets, are what is measured).
    """
    from repro.capture.frames import Frame

    viewport = 1000
    a = Frame(index=0, timestamp=0.0, painted_objects=frozenset({"x"}),
              painted_pixels=400, completeness=0.4)
    b = Frame(index=1, timestamp=0.1, painted_objects=frozenset({"x", "y"}),
              painted_pixels=650, completeness=0.65)
    assert a.pixel_difference(b, viewport) == pytest.approx(0.25)
    assert b.pixel_difference(a, viewport) == pytest.approx(0.25)

    # Disjoint object sets, equal painted area: measured as identical.
    c = Frame(index=2, timestamp=0.2, painted_objects=frozenset({"z"}),
              painted_pixels=400, completeness=0.4)
    assert a.painted_objects.isdisjoint(c.painted_objects)
    assert a.pixel_difference(c, viewport) == 0.0

    # Identical object sets short-circuit to exactly 0.0.
    d = Frame(index=3, timestamp=0.3, painted_objects=frozenset({"x"}),
              painted_pixels=400, completeness=0.4)
    assert a.pixel_difference(d, viewport) == 0.0

    # Real capture frames: monotone accumulation means adjacent frames never
    # hit the disjoint-equal-area corner.
    frames = video.frames.frames
    for earlier, later in zip(frames, frames[1:]):
        assert earlier.painted_objects <= later.painted_objects
