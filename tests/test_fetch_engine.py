"""Edge cases and legacy-reference equivalence for the unified fetch engine.

The engine (``repro.httpsim.engine``) replaced the per-object
``FetchScheduler`` loop and the separate HTTP/1.1 / HTTP/2 clients under a
bit-identical-outputs contract.  This module keeps that contract honest:

* a straight port of the legacy scheduler + clients (built on the public
  ``netsim`` classes) lives here as the *reference implementation*, and the
  engine must reproduce its records float-for-float on real corpus pages,
  for both protocols and both RNG schemes;
* scheduler edge cases: empty pages, pages whose non-root objects are all
  blocked, priority ties between critical streams, and cross-client
  record-count invariants.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.browser.browser import Browser
from repro.browser.preferences import BrowserPreferences
from repro.browser.scheduler import FetchScheduler, ONLOAD_DISPATCH_OVERHEAD
from repro.errors import CaptureError, PageModelError
from repro.httpsim.engine import CRITICAL_PRIORITY, FetchEngine, build_transport
from repro.httpsim.http1 import HTTP1Client, MAX_CONNECTIONS_PER_ORIGIN
from repro.httpsim.http2 import HTTP2Client
from repro.httpsim.messages import (
    HTTP1_REQUEST_HEADER_BYTES,
    HTTP2_REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
    FetchRecord,
    HTTPRequest,
    HTTPResponse,
)
from repro.netsim.bandwidth import BandwidthModel, SharedLink
from repro.netsim.connection import Connection
from repro.netsim.dns import DNSResolver
from repro.netsim.latency import LatencyModel, origin_latency
from repro.netsim.profiles import get_profile
from repro.rng import RNG_SCHEMES, SeededRNG
from repro.web.corpus import CorpusGenerator
from repro.web.objects import ObjectType, WebObject
from repro.web.page import Page


# -- the legacy reference implementation -----------------------------------------
#
# A faithful port of the pre-engine HTTP clients and the deque-based
# scheduler.  Kept deliberately naive: its only job is to pin the engine's
# outputs to the original semantics.


class _ReferenceH1:
    protocol_name = "http/1.1"

    def __init__(self, latency, link, dns, rng):
        self._latency = latency
        self._link = link
        self._dns = dns
        self._rng = rng.fork("http1")
        self._pools = {}
        self._dns_done_at = {}
        self.records = []

    def _resolve(self, origin, now):
        if origin not in self._dns_done_at:
            lookup = self._dns.resolve(origin, now=now)
            self._dns_done_at[origin] = now + lookup.duration
        return max(self._dns_done_at[origin], now)

    def _open(self, origin):
        pool = self._pools.setdefault(origin, [])
        connection = Connection(
            origin=origin,
            latency=origin_latency(self._latency, origin, self._rng),
            link=self._link,
            rng=self._rng,
            use_tls=True,
        )
        return pool, connection

    def fetch(self, obj, ready_at):
        request = HTTPRequest.for_object(obj)
        dns_ready = self._resolve(obj.origin, ready_at)
        queued_at = max(ready_at, dns_ready)
        pool = self._pools.setdefault(obj.origin, [])
        idle = [c for c in pool if c[1] <= queued_at]
        if idle:
            entry = min(idle, key=lambda c: c[1])
        elif len(pool) < MAX_CONNECTIONS_PER_ORIGIN:
            _, connection = self._open(obj.origin)
            established = connection.connect(queued_at)
            entry = [connection, established, f"h1-{obj.origin}-{len(pool)}"]
            pool.append(entry)
        else:
            entry = min(pool, key=lambda c: c[1])
        connection, busy_until, connection_id = entry
        start_at = max(queued_at, busy_until)
        size = obj.size_bytes + RESPONSE_HEADER_BYTES + HTTP1_REQUEST_HEADER_BYTES
        timing = connection.transfer(size, start_at, server_think=obj.server_think_time)
        entry[1] = timing.last_byte_at
        response = HTTPResponse(
            request=request, status=200, body_bytes=obj.size_bytes,
            header_bytes=RESPONSE_HEADER_BYTES, protocol=self.protocol_name,
        )
        record = FetchRecord(
            request=request, response=response, discovered_at=ready_at,
            queued_at=queued_at, started_at=timing.request_sent_at,
            first_byte_at=timing.first_byte_at, completed_at=timing.last_byte_at,
            connection_id=connection_id,
        )
        self.records.append(record)
        return record


class _ReferenceH2:
    protocol_name = "h2"

    def __init__(self, latency, link, dns, rng):
        self._latency = latency
        self._link = link
        self._dns = dns
        self._rng = rng.fork("http2")
        self._origins = {}
        self._dns_done_at = {}
        self.records = []

    def fetch(self, obj, ready_at):
        request = HTTPRequest.for_object(obj)
        origin = obj.origin
        if origin not in self._dns_done_at:
            lookup = self._dns.resolve(origin, now=ready_at)
            self._dns_done_at[origin] = ready_at + lookup.duration
        queued_at = max(ready_at, self._dns_done_at[origin])
        state = self._origins.get(origin)
        if state is None:
            connection = Connection(
                origin=origin,
                latency=origin_latency(self._latency, origin, self._rng),
                link=self._link,
                rng=self._rng,
                use_tls=True,
            )
            connection.connect(queued_at)
            state = self._origins[origin] = (connection, f"h2-{origin}")
        connection, connection_id = state
        start_at = max(queued_at, connection.established_at or queued_at)
        size = obj.size_bytes + RESPONSE_HEADER_BYTES + HTTP2_REQUEST_HEADER_BYTES
        timing = connection.transfer(
            size, start_at, server_think=obj.server_think_time,
            preempt=obj.priority >= CRITICAL_PRIORITY,
        )
        response = HTTPResponse(
            request=request, status=200, body_bytes=obj.size_bytes,
            header_bytes=RESPONSE_HEADER_BYTES, protocol=self.protocol_name,
        )
        record = FetchRecord(
            request=request, response=response, discovered_at=ready_at,
            queued_at=queued_at, started_at=start_at,
            first_byte_at=timing.first_byte_at, completed_at=timing.last_byte_at,
            connection_id=connection_id,
        )
        self.records.append(record)
        return record


def _reference_schedule(page: Page, client, extension_overhead: float = 0.0):
    """The original deque-based BFS scheduling loop, verbatim semantics."""
    page.validate()
    root = page.root
    fetches = {}
    fetches[root.object_id] = client.fetch(root, ready_at=extension_overhead)
    queue = deque(page.children_of(root.object_id))
    while queue:
        obj = queue.popleft()
        parent_record = fetches[obj.discovered_by]
        if obj.discovered_by == root.object_id and not obj.loaded_by_script:
            discovered_at = parent_record.first_byte_at + obj.discovery_delay
        else:
            discovered_at = parent_record.completed_at + obj.discovery_delay
        fetches[obj.object_id] = client.fetch(obj, discovered_at + extension_overhead)
        queue.extend(page.children_of(obj.object_id))
    return fetches


def _load_substrate(page: Page, scheme: str, seed: int = 2016, repeat: int = 0):
    """Latency/link/dns/rng exactly as ``Browser.load_with_fresh_state`` builds them."""
    profile = get_profile("cable-intl")
    rng = SeededRNG(seed, scheme).fork(f"load:{page.url}:repeat:{repeat}")
    latency = profile.latency.scaled(page.latency_multiplier)
    link = SharedLink(bandwidth=profile.bandwidth)
    dns = DNSResolver(latency=latency, rng=rng)
    return latency, link, dns, rng


_RECORD_FIELDS = ("discovered_at", "queued_at", "started_at", "first_byte_at",
                  "completed_at", "connection_id")


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
@pytest.mark.parametrize("protocol", ["h2", "http/1.1"])
def test_engine_reproduces_legacy_reference_bit_for_bit(scheme, protocol):
    """Engine records equal the legacy implementation's, float for float."""
    pages = CorpusGenerator(seed=99).http2_sample(3)
    for page in pages:
        latency, link, dns, rng = _load_substrate(page, scheme)
        reference_cls = _ReferenceH2 if protocol == "h2" else _ReferenceH1
        reference = reference_cls(latency, link, dns, rng)
        reference_fetches = _reference_schedule(page, reference, extension_overhead=0.01)

        latency, link, dns, rng = _load_substrate(page, scheme)
        transport = build_transport(protocol, latency, link, dns, rng)
        engine = FetchEngine(transport.fetch, extension_overhead=0.01)
        result = engine.run(page)

        assert list(result.fetches) == list(reference_fetches)
        for object_id, record in result.fetches.items():
            expected = reference_fetches[object_id]
            for field in _RECORD_FIELDS:
                assert getattr(record, field) == getattr(expected, field), (
                    f"{page.site_id}/{object_id}.{field} under {protocol}/{scheme}"
                )


# -- edge cases ------------------------------------------------------------------


def _page_with(objects, url="https://edge.example/"):
    page = Page(url=url, site_id="edge-site")
    for obj in objects:
        page.add_object(obj)
    return page


def _root(object_id="root"):
    return WebObject(
        object_id=object_id, object_type=ObjectType.HTML,
        url="https://edge.example/", origin="edge.example", size_bytes=30_000,
    )


def _child(object_id, parent="root", priority=16, script=False, origin="edge.example"):
    return WebObject(
        object_id=object_id, object_type=ObjectType.IMAGE,
        url=f"https://{origin}/{object_id}", origin=origin, size_bytes=12_000,
        discovered_by=parent, discovery_delay=0.01, priority=priority,
        loaded_by_script=script,
    )


def _engine_for(page, protocol="h2", scheme="sha256-v1"):
    latency, link, dns, rng = _load_substrate(page, scheme)
    transport = build_transport(protocol, latency, link, dns, rng)
    return FetchEngine(transport.fetch), transport


def test_empty_page_rejected_by_engine_and_browser():
    page = Page(url="https://empty.example/", site_id="empty")
    engine, _ = _engine_for(_page_with([_root()]))
    with pytest.raises(PageModelError):
        engine.run(page)  # no root document
    with pytest.raises(CaptureError):
        Browser().load(page)  # browser guards before scheduling


def test_root_only_page_onload_is_root_completion_plus_dispatch():
    """A page whose every non-root object was blocked still fires onload."""
    page = _page_with([_root()])
    engine, _ = _engine_for(page)
    result = engine.run(page)
    assert list(result.fetches) == ["root"]
    root_record = result.fetches["root"]
    assert result.onload == root_record.completed_at + ONLOAD_DISPATCH_OVERHEAD
    assert result.fully_loaded == result.onload


def test_all_blocked_page_matches_unblocked_root_record():
    """Blocking all children (ad-blocker style) must not disturb the root fetch."""
    full = _page_with([_root(), _child("ad-1"), _child("ad-2")])
    blocked = full.without_objects(["ad-1", "ad-2"])
    full_result = _engine_for(full)[0].run(full)
    blocked_result = _engine_for(blocked)[0].run(blocked)
    assert list(blocked_result.fetches) == ["root"]
    # The root stream is independent of the children's existence.
    assert (blocked_result.fetches["root"].completed_at
            == full_result.fetches["root"].completed_at)


def test_script_only_children_leave_onload_at_root():
    """Script-injected resources may finish after onload (paper §1)."""
    page = _page_with([_root(), _child("lazy", script=True)])
    result = _engine_for(page)[0].run(page)
    assert result.onload == result.fetches["root"].completed_at + ONLOAD_DISPATCH_OVERHEAD
    assert result.fully_loaded >= result.fetches["lazy"].completed_at


def test_priority_ties_are_deterministic_and_in_document_order():
    """Equal-priority critical streams issue in document order, repeatably."""
    page = _page_with([
        _root(),
        _child("css-a", priority=CRITICAL_PRIORITY),
        _child("css-b", priority=CRITICAL_PRIORITY),
        _child("img", priority=8),
    ])
    first = _engine_for(page)[0].run(page)
    second = _engine_for(page)[0].run(page)
    assert list(first.fetches) == ["root", "css-a", "css-b", "img"]
    for object_id in first.fetches:
        for field in _RECORD_FIELDS:
            assert (getattr(first.fetches[object_id], field)
                    == getattr(second.fetches[object_id], field))
    # Critical ties preempt independently: neither queues behind the other
    # on the shared link, so both complete before the bulk image.
    assert first.fetches["css-a"].completed_at < first.fetches["img"].completed_at
    assert first.fetches["css-b"].completed_at < first.fetches["img"].completed_at


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_cross_client_record_count_invariants(scheme):
    """h1 and h2 fetch the same object set with protocol-shaped connections."""
    pages = CorpusGenerator(seed=7).http2_sample(2)
    for page in pages:
        results = {}
        transports = {}
        for protocol in ("h2", "http/1.1"):
            engine, transport = _engine_for(page, protocol=protocol, scheme=scheme)
            results[protocol] = engine.run(page)
            transports[protocol] = transport
        h1, h2 = results["http/1.1"], results["h2"]
        assert list(h1.fetches) == list(h2.fetches)  # same objects, same order
        assert len(transports["http/1.1"].records) == len(transports["h2"].records)
        assert not h1.blocked_object_ids and not h2.blocked_object_ids
        origins = set(page.origins())
        # HTTP/2: exactly one connection per contacted origin; HTTP/1.1: a
        # pool of at most six per origin.
        assert transports["h2"].connection_count == len(origins)
        for origin in origins:
            assert transports["http/1.1"].connections_for(origin) <= MAX_CONNECTIONS_PER_ORIGIN
            assert transports["h2"].connections_for(origin) == 1
        assert sum(transports["h2"].streams_for(o) for o in origins) == len(h2.fetches)


def test_scheduler_facade_matches_engine():
    """FetchScheduler(client) and FetchEngine(transport) are the same path."""
    page = CorpusGenerator(seed=13).http2_sample(1)[0]
    latency, link, dns, rng = _load_substrate(page, "sha256-v1")
    client = HTTP2Client(latency=latency, link=link, dns=dns, rng=rng)
    via_scheduler = FetchScheduler(client, SeededRNG(1)).schedule(page)
    latency, link, dns, rng = _load_substrate(page, "sha256-v1")
    transport = build_transport("h2", latency, link, dns, rng)
    via_engine = FetchEngine(transport.fetch).run(page)
    assert via_scheduler.onload == via_engine.onload
    assert via_scheduler.fully_loaded == via_engine.fully_loaded
    for object_id, record in via_engine.fetches.items():
        for field in _RECORD_FIELDS:
            assert getattr(record, field) == getattr(via_scheduler.fetches[object_id], field)


def test_scheduler_respects_fetch_override_in_subclasses():
    """A client subclass overriding fetch() stays in the scheduling loop."""
    calls = []

    class CountingClient(HTTP2Client):
        def fetch(self, obj, ready_at):
            calls.append(obj.object_id)
            return super().fetch(obj, ready_at)

    page = _page_with([_root(), _child("img")])
    latency, link, dns, rng = _load_substrate(page, "sha256-v1")
    client = CountingClient(latency=latency, link=link, dns=dns, rng=rng)
    result = FetchScheduler(client, SeededRNG(1)).schedule(page)
    assert calls == ["root", "img"]
    assert list(result.fetches) == calls

    # Instance-level wrappers (the monkeypatch idiom) stay in the loop too.
    instance_calls = []
    latency, link, dns, rng = _load_substrate(page, "sha256-v1")
    patched = HTTP2Client(latency=latency, link=link, dns=dns, rng=rng)
    stock = patched.fetch
    patched.fetch = lambda obj, ready_at: (instance_calls.append(obj.object_id), stock(obj, ready_at))[1]
    FetchScheduler(patched, SeededRNG(1)).schedule(page)
    assert instance_calls == ["root", "img"]


def test_engine_wave_clock_advances_monotonically():
    """The simulator clock tracks discovery waves in real seconds."""
    page = CorpusGenerator(seed=21).http2_sample(1)[0]
    engine, _ = _engine_for(page)
    result = engine.run(page)
    simulator = engine.last_simulator
    assert simulator is not None
    assert simulator.processed >= 1  # at least the navigation wave ran
    assert 0.0 <= simulator.now <= result.fully_loaded
