"""Tests for the page model, ads and the synthetic corpus."""

from __future__ import annotations

import pytest

from repro.errors import PageModelError
from repro.web.ads import AD_NETWORKS, ad_origins, social_origins, tracker_origins
from repro.web.corpus import CorpusGenerator
from repro.web.layout import Viewport
from repro.web.objects import ObjectType, WebObject
from repro.web.page import Page


def simple_page_with(*objects: WebObject) -> Page:
    page = Page(url="https://www.t.example/", site_id="t", viewport=Viewport())
    for obj in objects:
        page.add_object(obj)
    return page


def root_object() -> WebObject:
    return WebObject(
        object_id="root",
        object_type=ObjectType.HTML,
        url="https://www.t.example/",
        origin="www.t.example",
        size_bytes=1000,
    )


def child(object_id: str, parent: str = "root", **kwargs) -> WebObject:
    defaults = dict(
        object_id=object_id,
        object_type=ObjectType.IMAGE,
        url=f"https://www.t.example/{object_id}.jpg",
        origin="www.t.example",
        size_bytes=100,
        discovered_by=parent,
    )
    defaults.update(kwargs)
    return WebObject(**defaults)


# -- page structural invariants ---------------------------------------------------


def test_page_requires_exactly_one_root():
    page = simple_page_with(child("a", parent=None, object_type=ObjectType.HTML))
    page.objects["a"].__dict__["discovered_by"] = None
    page.validate()  # one root: fine
    with pytest.raises(PageModelError):
        simple_page_with().validate()


def test_duplicate_object_ids_rejected():
    page = simple_page_with(root_object())
    with pytest.raises(PageModelError):
        page.add_object(root_object())


def test_dangling_parent_rejected():
    page = simple_page_with(root_object(), child("a", parent="missing"))
    with pytest.raises(PageModelError):
        page.validate()


def test_cycle_detection():
    page = simple_page_with(root_object(), child("a", parent="b"), child("b", parent="a"))
    with pytest.raises(PageModelError):
        page.validate()


def test_children_and_origins():
    page = simple_page_with(root_object(), child("a"), child("b", origin="cdn.t.example"))
    assert {o.object_id for o in page.children_of("root")} == {"a", "b"}
    assert page.origins()[0] == "www.t.example"
    assert "cdn.t.example" in page.origins()


def test_without_objects_removes_descendants():
    page = simple_page_with(root_object(), child("a"), child("b", parent="a"), child("c"))
    filtered = page.without_objects(["a"])
    assert "a" not in filtered.objects
    assert "b" not in filtered.objects
    assert "c" in filtered.objects
    assert "root" in filtered.objects
    # The original page is untouched.
    assert "a" in page.objects


def test_page_summary_fields():
    page = simple_page_with(root_object(), child("a"))
    summary = page.summary()
    assert summary["objects"] == 2
    assert summary["bytes"] == 1100
    assert summary["by_type"]["image"] == 1


# -- ad networks -------------------------------------------------------------------


def test_ad_network_categories_cover_expected():
    categories = {network.category for network in AD_NETWORKS}
    assert categories == {"ads", "tracking", "social"}


def test_origin_lists_disjoint():
    assert not set(ad_origins()) & set(tracker_origins())
    assert not set(ad_origins()) & set(social_origins())


# -- corpus ------------------------------------------------------------------------


def test_corpus_is_deterministic():
    a = CorpusGenerator(seed=11).generate_page("site-003")
    b = CorpusGenerator(seed=11).generate_page("site-003")
    assert a.summary() == b.summary()
    assert list(a.objects) == list(b.objects)


def test_corpus_seed_changes_pages():
    a = CorpusGenerator(seed=11).generate_page("site-003")
    b = CorpusGenerator(seed=12).generate_page("site-003")
    assert a.total_bytes != b.total_bytes


def test_generated_pages_validate(pages):
    for page in pages:
        page.validate()
        assert page.object_count > 10
        assert page.total_bytes > 100_000
        assert page.root.is_root


def test_http2_sample_flags(corpus):
    for page in corpus.http2_sample(5):
        assert page.supports_http2


def test_ad_sample_displays_ads(corpus):
    sample = corpus.ad_sample(5, corpus_size=100)
    assert len(sample) == 5
    for page in sample:
        assert page.displays_ads
        assert page.auxiliary_objects


def test_ad_corpus_ids_size(corpus):
    assert len(corpus.ad_corpus_ids(10_000)) == 10_000


def test_ad_sample_bounds(corpus):
    with pytest.raises(PageModelError):
        corpus.ad_sample(0)
    with pytest.raises(PageModelError):
        corpus.ad_sample(11, corpus_size=10)


def test_corpus_statistics(corpus, pages):
    stats = corpus.corpus_statistics(pages)
    assert stats["sites"] == len(pages)
    assert stats["mean_objects"] > 10
    assert 0.0 <= stats["ads_fraction"] <= 1.0
    with pytest.raises(PageModelError):
        corpus.corpus_statistics([])


def test_latency_multiplier_in_range(corpus):
    for index in range(10):
        page = corpus.generate_page(f"site-{index:03d}")
        assert 0.5 <= page.latency_multiplier <= 3.0


def test_auxiliary_pixel_fraction_between_zero_and_one(pages):
    for page in pages:
        assert 0.0 <= page.auxiliary_pixel_fraction <= 1.0
