"""Tests for the end-to-end campaign drivers (small scale)."""

from __future__ import annotations

import pytest

from repro.errors import CampaignError
from repro.experiments.adblock_campaign import BLOCKER_NAMES, run_adblock_campaign
from repro.experiments.h1h2_campaign import run_h1h2_campaign
from repro.experiments.plt_campaign import run_plt_campaign
from repro.experiments.validation import run_validation_study
from repro.metrics.plt import METRIC_NAMES


@pytest.fixture(scope="module")
def validation_study():
    return run_validation_study(sites=4, paid_participants=20, trusted_participants=20,
                                loads_per_site=2, seed=11)


@pytest.fixture(scope="module")
def plt_result():
    return run_plt_campaign(sites=8, participants=40, loads_per_site=2, seed=11)


@pytest.fixture(scope="module")
def h1h2_result():
    return run_h1h2_campaign(sites=6, participants=30, loads_per_site=2, seed=11)


@pytest.fixture(scope="module")
def adblock_result():
    return run_adblock_campaign(sites=6, participants=30, loads_per_site=2, seed=11)


def test_validation_study_structure(validation_study):
    rows = validation_study.table1_rows()
    assert len(rows) == 4
    assert {row["type"] for row in rows} == {"timeline", "ab"}
    assert all(row["participants"] == 20 for row in rows)
    paid_rows = [row for row in rows if "paid" in row["campaign"]]
    trusted_rows = [row for row in rows if "trusted" in row["campaign"]]
    assert all(row["cost_usd"] > 0 for row in paid_rows)
    assert all(row["cost_usd"] == 0 for row in trusted_rows)
    assert set(validation_study.behaviour) == {"timeline-paid", "timeline-trusted", "ab-paid", "ab-trusted"}
    assert len(validation_study.timeline_videos) == 4


def test_validation_trusted_recruitment_slower(validation_study):
    assert (
        validation_study.timeline_trusted.recruitment.duration_hours
        > validation_study.timeline_paid.recruitment.duration_hours
    )


def test_plt_campaign_outputs(plt_result):
    assert len(plt_result.videos) == 8
    assert set(plt_result.metrics_by_site) == {v.site_id for v in plt_result.videos}
    assert set(plt_result.comparison.correlations) == set(METRIC_NAMES)
    assert plt_result.uplt_by_site
    assert all(value > 0 for value in plt_result.uplt_by_site.values())
    assert plt_result.helper_effect


def test_plt_onload_correlates_positively(plt_result):
    assert plt_result.comparison.correlations["onload"] > 0.2


def test_h1h2_campaign_outputs(h1h2_result):
    assert h1h2_result.scores_by_site
    assert all(0.0 <= score <= 1.0 for score in h1h2_result.scores_by_site.values())
    assert set(h1h2_result.deltas_by_site)
    for deltas in h1h2_result.deltas_by_site.values():
        assert set(deltas) == set(METRIC_NAMES)
        assert all(value >= 0 for value in deltas.values())
    subset = h1h2_result.scores_for_delta_range("onload", low=0.0)
    assert set(subset) <= set(h1h2_result.scores_by_site)


def test_h1h2_favours_http2_overall(h1h2_result):
    scores = list(h1h2_result.scores_by_site.values())
    assert sum(scores) / len(scores) > 0.5


def test_adblock_campaign_outputs(adblock_result):
    assert set(adblock_result.scores_by_blocker) == set(BLOCKER_NAMES)
    for scores in adblock_result.scores_by_blocker.values():
        assert all(0.0 <= value <= 1.0 for value in scores.values())
    assert adblock_result.blocked_objects_by_blocker["ghostery"] >= adblock_result.blocked_objects_by_blocker["adblock"]


def test_adblock_campaign_requires_enough_sites():
    with pytest.raises(CampaignError):
        run_adblock_campaign(sites=2, participants=10, loads_per_site=1)
