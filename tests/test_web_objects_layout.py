"""Tests for the web object model and the viewport layout."""

from __future__ import annotations

import pytest

from repro.errors import PageModelError
from repro.web.layout import Viewport
from repro.web.objects import AUXILIARY_TYPES, ObjectType, WebObject


def make_object(**kwargs) -> WebObject:
    defaults = dict(
        object_id="o1",
        object_type=ObjectType.IMAGE,
        url="https://www.example.com/a.jpg",
        origin="www.example.com",
        size_bytes=100,
    )
    defaults.update(kwargs)
    return WebObject(**defaults)


def test_negative_size_rejected():
    with pytest.raises(PageModelError):
        make_object(size_bytes=-1)


def test_negative_pixels_rejected():
    with pytest.raises(PageModelError):
        make_object(above_fold_pixels=-1)


def test_negative_delays_rejected():
    with pytest.raises(PageModelError):
        make_object(discovery_delay=-0.1)
    with pytest.raises(PageModelError):
        make_object(render_delay=-0.1)
    with pytest.raises(PageModelError):
        make_object(execution_time=-0.1)


def test_root_detection():
    root = make_object(object_type=ObjectType.HTML, discovered_by=None)
    child = make_object(object_id="o2", object_type=ObjectType.HTML, discovered_by="o1")
    assert root.is_root
    assert not child.is_root


def test_auxiliary_types():
    for object_type in AUXILIARY_TYPES:
        assert make_object(object_type=object_type).is_auxiliary
    assert not make_object(object_type=ObjectType.IMAGE).is_auxiliary


def test_visibility():
    assert make_object(above_fold_pixels=10).is_visible
    assert not make_object(above_fold_pixels=0).is_visible


def test_describe_mentions_flags():
    description = make_object(blocking=True, third_party=True).describe()
    assert "blocking" in description
    assert "3rd-party" in description


def test_viewport_allocation():
    viewport = Viewport(width=100, height=100)
    region = viewport.allocate("a", 2000)
    assert region.pixels == 2000
    assert viewport.allocated_pixels == 2000
    assert viewport.free_pixels == 8000
    assert viewport.coverage() == pytest.approx(0.2)


def test_viewport_over_allocation_clamped():
    viewport = Viewport(width=10, height=10)
    region = viewport.allocate("a", 1_000_000)
    assert region.pixels == 100
    assert viewport.free_pixels == 0


def test_viewport_duplicate_allocation_rejected():
    viewport = Viewport(width=10, height=10)
    viewport.allocate("a", 10)
    with pytest.raises(PageModelError):
        viewport.allocate("a", 10)


def test_viewport_negative_allocation_rejected():
    viewport = Viewport(width=10, height=10)
    with pytest.raises(PageModelError):
        viewport.allocate("a", -1)


def test_viewport_primary_vs_auxiliary_accounting():
    viewport = Viewport(width=100, height=100)
    viewport.allocate("content", 3000, is_primary_content=True)
    viewport.allocate("ad", 1000, is_primary_content=False)
    assert viewport.primary_pixels() == 3000
    assert viewport.auxiliary_pixels() == 1000


def test_viewport_invalid_dimensions():
    with pytest.raises(PageModelError):
        Viewport(width=0, height=10)
