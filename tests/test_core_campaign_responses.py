"""Tests for response datasets and campaign execution."""

from __future__ import annotations

import pytest

from repro.config import VIDEOS_PER_PARTICIPANT
from repro.core.campaign import CampaignConfig, CampaignRunner, format_table1
from repro.core.responses import ResponseDataset
from repro.errors import AnalysisError, CampaignError


# -- dataset -----------------------------------------------------------------------


def test_dataset_accumulates(timeline_campaign):
    dataset = timeline_campaign.raw_dataset
    assert dataset.participant_count == 40
    assert dataset.response_count == len(dataset.timeline_responses)
    assert dataset.experiment_type == "timeline"
    assert dataset.video_ids()
    first_participant = dataset.participant_ids()[0]
    assert dataset.responses_for_participant(first_participant)


def test_dataset_filtered_subset(timeline_campaign):
    dataset = timeline_campaign.raw_dataset
    keep = dataset.participant_ids()[:5]
    subset = dataset.filtered(keep)
    assert subset.participant_count == 5
    assert all(r.participant_id in keep for r in subset.timeline_responses)
    # Original dataset untouched.
    assert dataset.participant_count == 40


def test_dataset_merge_type_check(timeline_campaign, ab_campaign):
    with pytest.raises(AnalysisError):
        timeline_campaign.raw_dataset.merge(ab_campaign.raw_dataset)
    merged = timeline_campaign.raw_dataset.merge(timeline_campaign.clean_dataset)
    assert merged.participant_count == timeline_campaign.raw_dataset.participant_count


# -- campaign configuration -----------------------------------------------------------


def test_campaign_config_validation():
    with pytest.raises(CampaignError):
        CampaignConfig(campaign_id="x", participant_count=0)
    with pytest.raises(CampaignError):
        CampaignConfig(campaign_id="x", participant_count=5, videos_per_participant=0)


# -- timeline campaign ------------------------------------------------------------------


def test_timeline_campaign_counts(timeline_campaign, timeline_experiment):
    assert timeline_campaign.experiment_type == "timeline"
    assert timeline_campaign.recruitment.count == 40
    per_participant = min(VIDEOS_PER_PARTICIPANT, len(timeline_experiment.videos))
    assert timeline_campaign.videos_served == 40 * per_participant
    assert len(timeline_campaign.raw_dataset.timeline_responses) == timeline_campaign.videos_served
    assert timeline_campaign.telemetry
    assert set(timeline_campaign.telemetry) == set(timeline_campaign.raw_dataset.participant_ids())


def test_timeline_campaign_is_deterministic(timeline_experiment):
    config = CampaignConfig(campaign_id="det", participant_count=10, seed=123)
    a = CampaignRunner(config).run_timeline(timeline_experiment)
    b = CampaignRunner(config).run_timeline(timeline_experiment)
    values_a = [r.submitted_time for r in a.raw_dataset.timeline_responses]
    values_b = [r.submitted_time for r in b.raw_dataset.timeline_responses]
    assert values_a == values_b


def test_timeline_campaign_table1_row(timeline_campaign):
    row = timeline_campaign.table1_row
    assert row["participants"] == 40
    assert row["male"] + row["female"] == 40
    assert row["cost_usd"] == pytest.approx(40 * 0.12)
    assert "engagement_filtered" in row
    assert "duration" in row


def test_ab_campaign_counts(ab_campaign):
    assert ab_campaign.experiment_type == "ab"
    assert len(ab_campaign.raw_dataset.ab_responses) == ab_campaign.videos_served
    controls = [r for r in ab_campaign.raw_dataset.ab_responses if r.is_control]
    assert controls, "control pairs should be injected"
    labels = {r.choice_label for r in ab_campaign.raw_dataset.ab_responses if not r.is_control}
    assert labels <= {"h1", "h2", "no_difference"}


def test_clean_dataset_is_subset(ab_campaign):
    clean_ids = set(ab_campaign.clean_dataset.participant_ids())
    raw_ids = set(ab_campaign.raw_dataset.participant_ids())
    assert clean_ids <= raw_ids
    assert set(ab_campaign.filter_report.kept_participants) == clean_ids


def test_format_table1():
    rows = [
        {"campaign": "a", "participants": 10, "cost_usd": 1.2},
        {"campaign": "b", "participants": 1000, "cost_usd": 120.0},
    ]
    table = format_table1(rows)
    assert "campaign" in table.splitlines()[0]
    assert len(table.splitlines()) == 4
    with pytest.raises(CampaignError):
        format_table1([])
