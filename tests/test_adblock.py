"""Tests for the ad-blocker substrate."""

from __future__ import annotations

import pytest

from repro.adblock.blockers import BLOCKERS, adblock, get_blocker, ghostery, ublock
from repro.adblock.filters import FilterList, FilterRule, easylist_like, easyprivacy_like, widget_list
from repro.rng import SeededRNG
from repro.web.ads import ad_origins, social_origins, tracker_origins
from repro.web.objects import ObjectType, WebObject


def make_ad_object(origin: str, object_type: ObjectType = ObjectType.AD) -> WebObject:
    return WebObject(
        object_id=f"ad-{origin}",
        object_type=object_type,
        url=f"https://{origin}/x",
        origin=origin,
        size_bytes=100,
        third_party=True,
    )


# -- filter rules -------------------------------------------------------------------


def test_rule_matches_origin_and_category():
    rule = FilterRule(pattern="ads.displaymax.example", categories=frozenset({ObjectType.AD}))
    assert rule.matches(make_ad_object("ads.displaymax.example"))
    assert not rule.matches(make_ad_object("ads.displaymax.example", ObjectType.IMAGE))
    assert not rule.matches(make_ad_object("other.example"))


def test_rule_without_category_matches_all_types():
    rule = FilterRule(pattern="example")
    assert rule.matches(make_ad_object("ads.example", ObjectType.IMAGE))


def test_filter_list_first_match():
    filter_list = FilterList(name="test")
    filter_list.add(FilterRule(pattern="nomatch"))
    filter_list.add(FilterRule(pattern="ads."))
    matched = filter_list.matches(make_ad_object("ads.displaymax.example"))
    assert matched is not None
    assert matched.pattern == "ads."
    assert len(filter_list) == 2


def test_prebuilt_lists_cover_their_category():
    easylist = easylist_like(ad_origins())
    for origin in ad_origins():
        assert easylist.matches(make_ad_object(origin)) is not None
    easyprivacy = easyprivacy_like(tracker_origins())
    for origin in tracker_origins():
        assert easyprivacy.matches(make_ad_object(origin, ObjectType.TRACKER)) is not None
    widgets = widget_list(social_origins())
    for origin in social_origins():
        assert widgets.matches(make_ad_object(origin, ObjectType.WIDGET)) is not None


# -- blockers -----------------------------------------------------------------------


def test_blocker_registry():
    assert set(BLOCKERS) == {"adblock", "ghostery", "ublock"}
    assert get_blocker("ghostery").name == "ghostery"
    with pytest.raises(KeyError):
        get_blocker("noscript")


def test_ghostery_blocks_most_categories(corpus):
    page = corpus.generate_page("adsite-00001", displays_ads=True)
    rng = SeededRNG(1)
    _, ghostery_blocked = ghostery().apply(page, rng)
    _, ublock_blocked = ublock().apply(page, rng)
    _, adblock_blocked = adblock().apply(page, rng)
    assert len(ghostery_blocked) >= len(ublock_blocked) >= len(adblock_blocked)
    assert len(ghostery_blocked) > 0


def test_adblock_acceptable_ads_lets_some_through(corpus):
    rng = SeededRNG(2)
    let_through_somewhere = False
    for index in range(12):
        page = corpus.generate_page(f"adsite-1{index:04d}", displays_ads=True)
        filtered, _ = adblock().apply(page, rng)
        remaining_ads = [o for o in filtered.iter_objects() if o.object_type is ObjectType.AD]
        if remaining_ads:
            let_through_somewhere = True
            break
    assert let_through_somewhere


def test_blocking_never_removes_first_party_content(corpus):
    page = corpus.generate_page("adsite-00002", displays_ads=True)
    filtered, blocked = ghostery().apply(page, SeededRNG(3))
    for object_id in blocked:
        obj = page.objects[object_id]
        # Everything removed is third-party or was injected by something third-party.
        parent = page.objects.get(obj.discovered_by) if obj.discovered_by else None
        assert obj.third_party or (parent is not None and parent.third_party)
    assert filtered.root.object_id == page.root.object_id


def test_apply_on_ad_free_page_is_noop(simple_page):
    filtered, blocked = ghostery().apply(simple_page, SeededRNG(4))
    assert blocked == []
    assert filtered.object_count == simple_page.object_count


def test_ghostery_has_lowest_overhead():
    assert ghostery().per_request_overhead < ublock().per_request_overhead
    assert ghostery().per_request_overhead < adblock().per_request_overhead
