"""Tests for the DNS resolver and the TCP/TLS connection model."""

from __future__ import annotations

import pytest

from repro.errors import DNSResolutionError, NetworkError
from repro.netsim.bandwidth import BandwidthModel, SharedLink
from repro.netsim.connection import Connection, INITIAL_CWND_SEGMENTS, MSS_BYTES
from repro.netsim.dns import DNSResolver
from repro.netsim.latency import LatencyModel
from repro.rng import SeededRNG


@pytest.fixture()
def latency():
    return LatencyModel(base_rtt=0.05, jitter=0.0)


@pytest.fixture()
def link():
    return SharedLink(bandwidth=BandwidthModel(downlink_bps=16_000_000, uplink_bps=4_000_000))


# -- DNS --------------------------------------------------------------------------


def test_cold_lookup_slower_than_warm(latency, rng):
    resolver = DNSResolver(latency, rng)
    cold = resolver.resolve("www.example.com")
    warm = resolver.resolve("www.example.com")
    assert not cold.cached
    assert warm.cached
    assert warm.duration < cold.duration


def test_prime_warms_cache(latency, rng):
    resolver = DNSResolver(latency, rng)
    resolver.prime(["a.example", "b.example"])
    assert resolver.resolve("a.example").cached
    assert resolver.resolve("b.example").cached


def test_ttl_expiry(latency, rng):
    resolver = DNSResolver(latency, rng, default_ttl=10.0)
    resolver.resolve("a.example", now=0.0)
    assert resolver.resolve("a.example", now=5.0).cached
    assert not resolver.resolve("a.example", now=100.0).cached


def test_flush_clears_cache(latency, rng):
    resolver = DNSResolver(latency, rng)
    resolver.resolve("a.example")
    resolver.flush()
    assert not resolver.resolve("a.example").cached


def test_empty_hostname_rejected(latency, rng):
    resolver = DNSResolver(latency, rng)
    with pytest.raises(DNSResolutionError):
        resolver.resolve("")


def test_hit_ratio(latency, rng):
    resolver = DNSResolver(latency, rng)
    assert resolver.hit_ratio == 0.0
    resolver.resolve("a.example")
    resolver.resolve("a.example")
    assert resolver.hit_ratio == pytest.approx(0.5)


# -- connections -------------------------------------------------------------------


def test_connect_pays_tcp_and_tls(latency, link, rng):
    conn = Connection("www.example.com", latency, link, rng, use_tls=True)
    established = conn.connect(now=0.0)
    assert established == pytest.approx(3 * 0.05)  # 1 RTT TCP + 2 RTT TLS
    assert conn.is_established


def test_connect_without_tls_is_one_rtt(latency, link, rng):
    conn = Connection("www.example.com", latency, link, rng, use_tls=False)
    assert conn.connect(now=0.0) == pytest.approx(0.05)


def test_connect_is_idempotent(latency, link, rng):
    conn = Connection("www.example.com", latency, link, rng)
    first = conn.connect(now=0.0)
    again = conn.connect(now=10.0)
    assert again == pytest.approx(10.0)
    assert conn.established_at == pytest.approx(first)


def test_transfer_before_connect_rejected(latency, link, rng):
    conn = Connection("www.example.com", latency, link, rng)
    with pytest.raises(NetworkError):
        conn.transfer(1000, request_at=0.0)


def test_transfer_before_establishment_rejected(latency, link, rng):
    conn = Connection("www.example.com", latency, link, rng)
    conn.connect(now=0.0)
    with pytest.raises(NetworkError):
        conn.transfer(1000, request_at=0.01)


def test_transfer_timing_ordering(latency, link, rng):
    conn = Connection("www.example.com", latency, link, rng)
    established = conn.connect(now=0.0)
    timing = conn.transfer(100_000, request_at=established, server_think=0.02)
    assert timing.request_sent_at == pytest.approx(established)
    assert timing.first_byte_at > timing.request_sent_at
    assert timing.last_byte_at > timing.first_byte_at
    assert timing.ttfb >= 0.05  # at least one RTT
    assert timing.bytes_transferred == 100_000


def test_large_transfer_pays_slow_start_rounds(latency, link, rng):
    conn = Connection("www.example.com", latency, link, rng)
    established = conn.connect(now=0.0)
    small = conn.transfer(INITIAL_CWND_SEGMENTS * MSS_BYTES // 2, request_at=established)
    large_conn = Connection("big.example.com", latency, link, rng)
    established_big = large_conn.connect(now=0.0)
    large = large_conn.transfer(5_000_000, request_at=established_big)
    assert large.duration > small.duration


def test_cwnd_grows_across_transfers(latency, link, rng):
    conn = Connection("www.example.com", latency, link, rng)
    established = conn.connect(now=0.0)
    first = conn.transfer(1_000_000, request_at=established)
    second = conn.transfer(1_000_000, request_at=first.last_byte_at)
    # The second transfer needs fewer slow-start rounds, so its duration
    # (excluding queueing, which the FIFO link makes equal) is no larger.
    assert second.duration <= first.duration + 1e-6
    assert conn.transfers == 2
    assert conn.bytes_sent == 2_000_000
