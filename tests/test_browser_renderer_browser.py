"""Tests for the renderer, devtools instrumentation, and the Browser façade."""

from __future__ import annotations

import pytest

from repro.browser.browser import Browser
from repro.browser.preferences import BrowserPreferences
from repro.browser.renderer import Renderer
from repro.errors import CaptureError
from repro.web.layout import Viewport
from repro.web.page import Page


# -- renderer ----------------------------------------------------------------------


def test_render_timeline_monotonic_completeness(load_result):
    timeline = load_result.render_timeline
    previous = -1.0
    for t in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, timeline.last_visual_change + 1.0]:
        value = timeline.completeness_at(t)
        assert value >= previous - 1e-12
        assert 0.0 <= value <= 1.0
        previous = value
    assert timeline.completeness_at(timeline.last_visual_change + 1.0) == pytest.approx(1.0)


def test_first_before_last_visual_change(load_result):
    timeline = load_result.render_timeline
    assert timeline.first_visual_change <= timeline.last_visual_change
    assert timeline.first_visual_change > 0


def test_no_paint_before_render_blockers(load_result, page):
    blocking_done = max(
        load_result.completion_time(obj.object_id) + obj.execution_time
        for obj in page.iter_objects()
        if obj.blocking and load_result.completion_time(obj.object_id) is not None
    )
    assert load_result.first_visual_change >= blocking_done - 1e-9


def test_primary_complete_before_or_at_auxiliary(load_result):
    timeline = load_result.render_timeline
    assert timeline.primary_complete_time() <= timeline.auxiliary_complete_time() + 1e-9


def test_progress_curve_reaches_one(load_result):
    curve = load_result.render_timeline.progress_curve(resolution=0.25)
    assert curve[-1][1] == pytest.approx(1.0)


def test_renderer_requires_root_fetch(simple_page):
    with pytest.raises(Exception):
        Renderer().render(simple_page, fetches={})


# -- browser -----------------------------------------------------------------------


def test_load_produces_consistent_result(load_result, page):
    assert load_result.protocol == "h2"
    assert load_result.onload > 0
    assert load_result.fully_loaded >= load_result.onload
    assert len(load_result.fetch_records) == page.object_count
    assert load_result.total_transfer_bytes > 0
    assert load_result.har.entry_count == len(load_result.fetch_records)


def test_h1_load_uses_http1(h1_load_result):
    assert h1_load_result.protocol == "http/1.1"
    protocols = {r.response.protocol for r in h1_load_result.fetch_records if r.response}
    assert protocols == {"http/1.1"}


def test_http2_not_slower_too_often(pages):
    """Across the small corpus HTTP/2 should win onload more often than it loses."""
    wins = 0
    for p in pages:
        h2 = Browser(BrowserPreferences(protocol="h2"), "cable-intl", seed=3).load(p)
        h1 = Browser(BrowserPreferences(protocol="http/1.1"), "cable-intl", seed=3).load(p)
        if h2.onload <= h1.onload:
            wins += 1
    assert wins >= len(pages) // 2


def test_auto_protocol_follows_site_support(corpus):
    h2_page = corpus.generate_page("auto-a", supports_http2=True)
    h1_page = corpus.generate_page("auto-b", supports_http2=False)
    browser = Browser(BrowserPreferences(protocol="auto"), "cable-intl", seed=3)
    assert browser.load(h2_page).protocol == "h2"
    assert browser.load(h1_page).protocol == "http/1.1"


def test_empty_page_rejected():
    browser = Browser()
    empty = Page(url="https://empty.example/", site_id="empty", viewport=Viewport())
    with pytest.raises(CaptureError):
        browser.load(empty)


def test_repeat_loads_differ_but_same_repeat_is_deterministic(page):
    browser = Browser(BrowserPreferences(protocol="h2"), "cable-intl", seed=3)
    a = browser.load_with_fresh_state(page, repeat_index=0)
    b = browser.load_with_fresh_state(page, repeat_index=0)
    c = browser.load_with_fresh_state(page, repeat_index=1)
    assert a.onload == pytest.approx(b.onload)
    assert a.onload != pytest.approx(c.onload)


def test_adblocker_reduces_requests_and_blocks_ads(corpus):
    from repro.adblock.blockers import ghostery

    ad_page = corpus.generate_page("adsite-00042", displays_ads=True)
    plain = Browser(BrowserPreferences(protocol="auto"), "cable-intl", seed=3).load(ad_page)
    blocked = Browser(
        BrowserPreferences(protocol="auto", extensions=[ghostery()]), "cable-intl", seed=3
    ).load(ad_page)
    assert blocked.blocked_object_ids
    assert blocked.page.object_count < plain.page.object_count
    assert blocked.total_transfer_bytes < plain.total_transfer_bytes


def test_trace_contains_onload_event(load_result):
    methods = [event.method for event in load_result.trace]
    assert "Page.loadEventFired" in methods
    assert "Network.requestWillBeSent" in methods
    assert "Page.paint" in methods
    times = [event.time for event in load_result.trace]
    assert times == sorted(times)
