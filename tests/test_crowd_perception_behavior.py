"""Tests for the perception and behaviour models."""

from __future__ import annotations

import pytest

from repro.capture.video import control_splice, splice
from repro.crowd.behavior import BehaviourSimulator
from repro.crowd.participant import ParticipantClass, QualityTraits, ReadinessPersona, generate_participant
from repro.crowd.perception import compare_videos, ideal_readiness, perceive_readiness
from repro.rng import SeededRNG


@pytest.fixture()
def paid_participant():
    return generate_participant("paid-1", ParticipantClass.PAID, "crowdflower", SeededRNG(21))


@pytest.fixture()
def trusted_participant():
    return generate_participant("trusted-1", ParticipantClass.TRUSTED, "invited", SeededRNG(22))


def careful(participant):
    """Force a participant into a highly careful configuration."""
    participant.traits.is_random_clicker = False
    participant.traits.is_frenetic = False
    participant.traits.conscientiousness = 0.95
    participant.traits.perception_noise = 0.15
    return participant


# -- perception ---------------------------------------------------------------------


def test_ideal_readiness_ordering(video):
    early = ideal_readiness(video, ReadinessPersona.EARLY)
    primary = ideal_readiness(video, ReadinessPersona.PRIMARY_CONTENT)
    everything = ideal_readiness(video, ReadinessPersona.EVERYTHING)
    assert early <= primary <= everything
    assert everything == pytest.approx(video.load_result.last_visual_change)


def test_perceived_readiness_within_video(video, paid_participant):
    rng = SeededRNG(5)
    for _ in range(20):
        perception = perceive_readiness(video, paid_participant, rng.fork(str(_)))
        assert 0.0 <= perception.perceived_time <= video.duration
        assert perception.ideal_time >= 0.0


def test_perception_noise_scales_with_trait(video, paid_participant):
    rng = SeededRNG(6)
    careful(paid_participant)
    paid_participant.traits.perception_noise = 0.05
    tight = [perceive_readiness(video, paid_participant, rng.fork(f"a{i}")).perceived_time for i in range(40)]
    paid_participant.traits.perception_noise = 1.2
    loose = [perceive_readiness(video, paid_participant, rng.fork(f"b{i}")).perceived_time for i in range(40)]

    def spread(values):
        return max(values) - min(values)

    assert spread(loose) > spread(tight)


def test_compare_videos_picks_clearly_faster_side(paid_participant):
    careful(paid_participant)
    paid_participant.traits.jnd_seconds = 0.2
    rng = SeededRNG(7)
    choices = [
        compare_videos(1.0, 4.0, paid_participant, rng.fork(str(i)), f"pair{i}") for i in range(30)
    ]
    assert choices.count("left") >= 28


def test_compare_videos_no_difference_for_tiny_delta(paid_participant):
    careful(paid_participant)
    paid_participant.traits.jnd_seconds = 0.5
    rng = SeededRNG(8)
    choices = [
        compare_videos(2.00, 2.02, paid_participant, rng.fork(str(i)), f"pair{i}") for i in range(60)
    ]
    assert choices.count("no_difference") > 20


# -- behaviour ----------------------------------------------------------------------


def test_timeline_task_produces_consistent_telemetry(video, paid_participant):
    simulator = BehaviourSimulator(SeededRNG(9))
    behaviour = simulator.timeline_task(careful(paid_participant), video, first_task=True)
    interaction = behaviour.interaction
    assert interaction.watched_video
    assert interaction.seek_actions >= 1
    assert interaction.time_on_task_seconds > 0
    assert 0.0 <= behaviour.slider_time <= video.duration
    assert behaviour.submitted_time == behaviour.slider_time  # helper not applied yet


def test_timeline_without_preload_overshoots(video, paid_participant):
    careful(paid_participant)
    with_preload = []
    without_preload = []
    for i in range(25):
        sim = BehaviourSimulator(SeededRNG(100 + i))
        with_preload.append(sim.timeline_task(paid_participant, video, True, preload_video=True).slider_time)
        sim2 = BehaviourSimulator(SeededRNG(100 + i))
        without_preload.append(sim2.timeline_task(paid_participant, video, True, preload_video=False).slider_time)
    assert sum(without_preload) / len(without_preload) > sum(with_preload) / len(with_preload)


def test_random_clicker_often_skips_video(video):
    clicker = generate_participant("rc", ParticipantClass.PAID, "crowdflower", SeededRNG(31))
    clicker.traits.is_random_clicker = True
    skipped = 0
    for i in range(20):
        simulator = BehaviourSimulator(SeededRNG(400 + i))
        behaviour = simulator.timeline_task(clicker, video, first_task=(i == 0))
        if not behaviour.interaction.watched_video:
            skipped += 1
    assert skipped >= 10


def test_frenetic_participant_generates_many_seeks(video):
    frenetic = generate_participant("fr", ParticipantClass.PAID, "crowdflower", SeededRNG(32))
    frenetic.traits.is_random_clicker = False
    frenetic.traits.is_frenetic = True
    simulator = BehaviourSimulator(SeededRNG(11))
    behaviour = simulator.timeline_task(frenetic, video, first_task=True)
    assert behaviour.interaction.seek_actions >= 500


def test_control_frame_reaction_better_for_conscientious(video):
    simulator = BehaviourSimulator(SeededRNG(12))
    careful_p = generate_participant("c", ParticipantClass.TRUSTED, "invited", SeededRNG(33))
    careful_p.traits.conscientiousness = 0.98
    careful_p.traits.is_random_clicker = False
    sloppy = generate_participant("s", ParticipantClass.PAID, "crowdflower", SeededRNG(34))
    sloppy.traits.is_random_clicker = True
    careful_correct = sum(simulator.reacts_to_control_frame(careful_p, str(i)) for i in range(100))
    sloppy_correct = sum(simulator.reacts_to_control_frame(sloppy, str(i)) for i in range(100))
    assert careful_correct > sloppy_correct
    assert careful_correct >= 90


def test_ab_task_control_pair_detected(video, trusted_participant):
    careful(trusted_participant)
    control = control_splice("ctrl", video, delayed_side="right", delay=3.0)
    simulator = BehaviourSimulator(SeededRNG(13))
    correct = 0
    for i in range(20):
        behaviour = BehaviourSimulator(SeededRNG(200 + i)).ab_task(trusted_participant, control, first_task=True)
        if behaviour.correct_control:
            correct += 1
    assert correct >= 16


def test_ab_task_prefers_faster_side(video_pair, trusted_participant):
    careful(trusted_participant)
    trusted_participant.persona = ReadinessPersona.PRIMARY_CONTENT
    h1, h2 = video_pair
    site = sorted(h1)[0]
    spliced = splice("pair", h1[site], h2[site], "h1", "h2")
    onset_left = spliced.side_onload("left")
    onset_right = spliced.side_onload("right")
    if abs(onset_left - onset_right) < 0.4:
        pytest.skip("protocol difference too small on this site to assert a preference")
    expected = "left" if onset_left < onset_right else "right"
    votes = []
    for i in range(30):
        behaviour = BehaviourSimulator(SeededRNG(300 + i)).ab_task(trusted_participant, spliced, True)
        votes.append(behaviour.choice)
    assert votes.count(expected) > votes.count("left" if expected == "right" else "right")
