"""Tests for the HTTP/1.1 and HTTP/2 clients."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.httpsim.http1 import HTTP1Client, MAX_CONNECTIONS_PER_ORIGIN
from repro.httpsim.http2 import HTTP2Client, PushConfiguration
from repro.netsim.bandwidth import BandwidthModel, SharedLink
from repro.netsim.dns import DNSResolver
from repro.netsim.latency import LatencyModel
from repro.rng import SeededRNG
from repro.web.objects import ObjectType, WebObject


def make_object(index: int, origin: str = "www.example.com", size: int = 20_000,
                priority: int = 8) -> WebObject:
    return WebObject(
        object_id=f"obj-{origin}-{index}",
        object_type=ObjectType.IMAGE,
        url=f"https://{origin}/img/{index}.jpg",
        origin=origin,
        size_bytes=size,
        priority=priority,
    )


def make_clients(seed: int = 3):
    latency = LatencyModel(base_rtt=0.05, jitter=0.0)
    rng = SeededRNG(seed)

    def build(cls, **kwargs):
        link = SharedLink(bandwidth=BandwidthModel(downlink_bps=16_000_000, uplink_bps=4_000_000))
        dns = DNSResolver(latency, rng.fork(cls.__name__))
        return cls(latency=latency, link=link, dns=dns, rng=rng.fork(cls.__name__ + "c"), **kwargs)

    return build


def test_http1_opens_at_most_six_connections_per_origin():
    client = make_clients()(HTTP1Client)
    for index in range(20):
        client.fetch(make_object(index), ready_at=0.0)
    assert client.connections_for("www.example.com") <= MAX_CONNECTIONS_PER_ORIGIN
    assert client.connection_count <= MAX_CONNECTIONS_PER_ORIGIN


def test_http1_queues_when_connections_busy():
    client = make_clients()(HTTP1Client)
    for index in range(20):
        client.fetch(make_object(index), ready_at=0.0)
    assert client.total_queue_time > 0.0


def test_http1_negative_ready_rejected():
    client = make_clients()(HTTP1Client)
    with pytest.raises(ProtocolError):
        client.fetch(make_object(0), ready_at=-1.0)


def test_http1_records_accumulate():
    client = make_clients()(HTTP1Client)
    for index in range(5):
        client.fetch(make_object(index), ready_at=0.0)
    assert len(client.records) == 5
    for record in client.records:
        assert record.response is not None
        assert record.response.protocol == "http/1.1"
        assert record.completed_at >= record.first_byte_at >= record.started_at


def test_http2_single_connection_per_origin():
    client = make_clients()(HTTP2Client)
    for index in range(20):
        client.fetch(make_object(index), ready_at=0.0)
    assert client.connection_count == 1
    assert client.streams_for("www.example.com") == 20


def test_http2_multiple_origins_multiple_connections():
    client = make_clients()(HTTP2Client)
    client.fetch(make_object(0, origin="a.example"), ready_at=0.0)
    client.fetch(make_object(1, origin="b.example"), ready_at=0.0)
    assert client.connection_count == 2


def test_http2_never_queues_behind_busy_connection():
    client = make_clients()(HTTP2Client)
    first = client.fetch(make_object(0, size=500_000), ready_at=0.0)
    second = client.fetch(make_object(1), ready_at=0.0)
    # The second request is issued immediately; it does not wait for the
    # first stream's last byte before being sent.
    assert second.started_at < first.completed_at


def test_http2_faster_than_http1_for_many_small_objects():
    build = make_clients()
    h1 = build(HTTP1Client)
    h2 = build(HTTP2Client)
    objects = [make_object(i, size=15_000) for i in range(40)]
    h1_done = max(h1.fetch(o, ready_at=0.0).completed_at for o in objects)
    h2_done = max(h2.fetch(o, ready_at=0.0).completed_at for o in objects)
    assert h2_done < h1_done


def test_http2_push_skips_request_round_trip():
    build = make_clients()
    pushed_obj = make_object(0, priority=32)
    plain = build(HTTP2Client)
    pushing = build(HTTP2Client, push=PushConfiguration(enabled=True, pushed_object_ids=(pushed_obj.object_id,)))
    plain_record = plain.fetch(pushed_obj, ready_at=0.0)
    pushed_record = pushing.fetch(pushed_obj, ready_at=0.0)
    assert pushed_record.completed_at <= plain_record.completed_at


def test_http2_protocol_label():
    client = make_clients()(HTTP2Client)
    record = client.fetch(make_object(0), ready_at=0.0)
    assert record.response.protocol == "h2"


def test_http2_negative_ready_rejected():
    client = make_clients()(HTTP2Client)
    with pytest.raises(ProtocolError):
        client.fetch(make_object(0), ready_at=-0.5)
