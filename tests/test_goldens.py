"""Golden snapshot tests: stored goldens reproduce bit-for-bit per scheme.

Tier-1 runs the small-scale checks for both schemes (fast: 5 sites x 20
participants each); the bench- and full-scale checks are tier-2.  All carry
the ``goldens`` marker so ``-m goldens`` selects the whole family.
"""

from __future__ import annotations

import json

import pytest

import repro.goldens as goldens
from repro.capture.webpeg import DEFAULT_CAPTURE_CACHE
from repro.errors import ConfigurationError, RNGSchemeMismatchError, StorageError
from repro.goldens import (
    FAULT_SCALES,
    GOLDEN_FAULT_RATES,
    GOLDEN_SEED,
    SCALES,
    SWEEP_SCALES,
    TRIAGE_SCALES,
    WAREHOUSE_SCALES,
    diff_fault_snapshots,
    diff_snapshots,
    diff_sweep_snapshots,
    diff_triage_snapshots,
    diff_warehouse_snapshots,
    golden_path,
    load_golden,
    save_golden,
    snapshot_plt_campaign,
    stored_goldens,
    verify_golden,
)
from repro.rng import RNG_SCHEMES, SCHEME_SHA256_V1, SCHEME_SPLITMIX64_V2


@pytest.fixture(autouse=True)
def _unpinned_capture_cache():
    """Leave the process-wide cache unpinned around every goldens test."""
    DEFAULT_CAPTURE_CACHE.clear()
    yield
    DEFAULT_CAPTURE_CACHE.clear()


# -- the store itself -----------------------------------------------------------


def test_store_holds_both_schemes_at_every_scale():
    names = {path.name for path in stored_goldens()}
    for scheme in RNG_SCHEMES:
        for scale in SCALES:
            assert golden_path(scheme, scale).name in names


def test_load_golden_records_matching_scheme_and_seed():
    for scheme in RNG_SCHEMES:
        snapshot = load_golden(scheme, "small")
        assert snapshot["rng_scheme"] == scheme
        assert snapshot["seed"] == GOLDEN_SEED
        assert snapshot["scale"]["name"] == "small"


def test_unknown_scale_rejected():
    with pytest.raises(ConfigurationError):
        golden_path(SCHEME_SHA256_V1, "gigantic")


def test_missing_golden_reports_capture_command():
    with pytest.raises(StorageError, match="repro.goldens capture"):
        load_golden(SCHEME_SHA256_V1, "small", seed=999999)


def test_capture_refuses_to_overwrite_stored_golden():
    snapshot = load_golden(SCHEME_SHA256_V1, "small")
    with pytest.raises(StorageError, match="refresh"):
        save_golden(snapshot, overwrite=False)


def test_load_rejects_scheme_mismatched_file(tmp_path, monkeypatch):
    """A stored result produced under another scheme raises, naming both."""
    monkeypatch.setattr(goldens, "DATA_DIR", tmp_path)
    doctored = {
        "kind": "plt-campaign",
        "rng_scheme": SCHEME_SPLITMIX64_V2,
        "seed": GOLDEN_SEED,
        "scale": {"name": "small", **SCALES["small"]},
    }
    path = tmp_path / golden_path(SCHEME_SHA256_V1, "small").name
    path.write_text(json.dumps(doctored), encoding="utf-8")
    with pytest.raises(RNGSchemeMismatchError) as excinfo:
        load_golden(SCHEME_SHA256_V1, "small")
    message = str(excinfo.value)
    assert SCHEME_SHA256_V1 in message and SCHEME_SPLITMIX64_V2 in message


def test_diff_between_schemes_is_nonempty_and_self_describing():
    left = load_golden(SCHEME_SHA256_V1, "small")
    right = load_golden(SCHEME_SPLITMIX64_V2, "small")
    differences = diff_snapshots(left, right)
    assert differences
    assert any(line.startswith("rng_scheme:") for line in differences)


def test_diff_detects_single_tampered_site():
    golden = load_golden(SCHEME_SHA256_V1, "small")
    tampered = json.loads(json.dumps(golden))
    site = next(iter(tampered["uplt_by_site"]))
    tampered["uplt_by_site"][site] = "0.0"
    differences = diff_snapshots(golden, tampered)
    assert differences == [f"uplt_by_site[{site}]: {golden['uplt_by_site'][site]!r} != '0.0'"]


# -- tier-1: small-scale reproduction, both schemes -----------------------------


@pytest.mark.goldens
@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_small_golden_reproduces_bit_for_bit(scheme):
    assert verify_golden(scheme, "small") == []


@pytest.mark.goldens
def test_small_snapshot_pins_every_output_section():
    snapshot = snapshot_plt_campaign(SCHEME_SHA256_V1, "small")
    for section in ("table1", "filter_summary", "uplt_by_site", "metric_correlations"):
        assert snapshot[section], section
    assert snapshot["videos_served"] > 0
    # Five sites at small scale, every mean recorded as a repr string.
    assert len(snapshot["uplt_by_site"]) == SCALES["small"]["sites"]
    assert all(isinstance(v, str) for v in snapshot["uplt_by_site"].values())


# -- the network-profile sweep goldens ------------------------------------------


def test_store_holds_sweep_goldens_for_both_schemes():
    names = {path.name for path in stored_goldens()}
    for scheme in RNG_SCHEMES:
        assert golden_path(scheme, "small", kind="sweep").name in names


def test_sweep_golden_records_profiles_and_per_profile_sections():
    for scheme in RNG_SCHEMES:
        snapshot = load_golden(scheme, "small", kind="sweep")
        assert snapshot["kind"] == "profile-sweep"
        assert snapshot["profiles"] == list(SWEEP_SCALES["small"]["profiles"])
        for profile in snapshot["profiles"]:
            section = snapshot["per_profile"][profile]
            assert section["table1"]["campaign"] == f"profile-sweep-{profile}"
            assert len(section["uplt_by_site"]) <= SWEEP_SCALES["small"]["sites"]
            assert all(isinstance(v, str) for v in section["uplt_by_site"].values())


def test_sweep_diff_detects_tampered_profile():
    golden = load_golden(RNG_SCHEMES[0], "small", kind="sweep")
    tampered = json.loads(json.dumps(golden))
    profile = tampered["profiles"][0]
    site = next(iter(tampered["per_profile"][profile]["uplt_by_site"]))
    tampered["per_profile"][profile]["uplt_by_site"][site] = "0.0"
    differences = diff_sweep_snapshots(golden, tampered)
    assert differences and differences[0].startswith(f"{profile}.uplt_by_site[{site}]")


@pytest.mark.goldens
@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_small_sweep_golden_reproduces_bit_for_bit(scheme):
    assert verify_golden(scheme, "small", kind="sweep") == []


# -- the warehouse goldens -------------------------------------------------------


def test_store_holds_warehouse_goldens_for_both_schemes():
    names = {path.name for path in stored_goldens()}
    for scheme in RNG_SCHEMES:
        assert golden_path(scheme, "small", kind="warehouse").name in names


def test_warehouse_golden_pins_record_id_and_stats():
    for scheme in RNG_SCHEMES:
        snapshot = load_golden(scheme, "small", kind="warehouse")
        assert snapshot["kind"] == "warehouse-ingest"
        assert len(snapshot["record_id"]) == 64
        assert snapshot["reingest_noop"] is True
        assert snapshot["index_meta"]["rng_scheme"] == scheme
        assert snapshot["query_counts"] == {
            "kind_plt": 1, "scheme": 1, "campaign": 1, "profile": 1,
        }
        assert snapshot["self_compare"]["mean_uplt_delta"] == "0.0"
        stats = snapshot["stats"]
        assert len(stats["uplt_ci_by_site"]) == WAREHOUSE_SCALES["small"]["sites"]
        assert set(stats["overall_uplt_ci"]) == {"point", "low", "high"}
        assert stats["spearman_by_metric"]
    # Every scheme pins a *different* record id: the record embeds every
    # response, so the content address separates the streams.
    ids = {load_golden(s, "small", kind="warehouse")["record_id"] for s in RNG_SCHEMES}
    assert len(ids) == len(RNG_SCHEMES)


def test_warehouse_diff_detects_tampered_record_id():
    golden = load_golden(RNG_SCHEMES[0], "small", kind="warehouse")
    tampered = json.loads(json.dumps(golden))
    tampered["record_id"] = "0" * 64
    tampered["stats"]["overall_uplt_ci"]["point"] = "0.0"
    differences = diff_warehouse_snapshots(golden, tampered)
    assert len(differences) == 2
    assert any(line.startswith("record_id:") for line in differences)
    assert any(line.startswith("stats.overall_uplt_ci.point:") for line in differences)


@pytest.mark.goldens
@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_small_warehouse_golden_reproduces_bit_for_bit(scheme):
    assert verify_golden(scheme, "small", kind="warehouse") == []


# -- the faulted kill+resume goldens ---------------------------------------------


def test_store_holds_fault_goldens_for_both_schemes():
    names = {path.name for path in stored_goldens()}
    for scheme in RNG_SCHEMES:
        assert golden_path(scheme, "small", kind="faults").name in names


def test_fault_golden_pins_the_resilience_contract():
    for scheme in RNG_SCHEMES:
        snapshot = load_golden(scheme, "small", kind="faults")
        assert snapshot["kind"] == "faulted-campaign"
        assert snapshot["fault_plan"] == {
            "seed": GOLDEN_SEED, "rng_scheme": scheme, **GOLDEN_FAULT_RATES,
        }
        # The hard contract: the run was actually interrupted mid-way, the
        # resumed warehouse record id is byte-identical to the uninterrupted
        # run's, and both stores came out of the trip fsck-clean.
        assert snapshot["interrupted"] is True
        assert snapshot["resume_identical"] is True
        assert all(snapshot["fsck_clean"].values())
        assert len(snapshot["record_id"]) == 64
        # The plan really fired at every boundary the golden pins.
        assert snapshot["quarantined_sites"] and snapshot["dropouts"]
        assert snapshot["ingest_faults"]["torn_writes_injected"] >= 1
        assert (set(snapshot["surviving_sites"])
                == set(snapshot["uplt_by_site"]))
        assert not set(snapshot["quarantined_sites"]) & set(snapshot["surviving_sites"])
        total = FAULT_SCALES["small"]["sites"]
        assert len(snapshot["surviving_sites"]) + len(snapshot["quarantined_sites"]) == total
    ids = {load_golden(s, "small", kind="faults")["record_id"] for s in RNG_SCHEMES}
    assert len(ids) == len(RNG_SCHEMES)


def test_fault_diff_detects_tampered_record_id_and_quarantine():
    golden = load_golden(RNG_SCHEMES[0], "small", kind="faults")
    tampered = json.loads(json.dumps(golden))
    tampered["record_id"] = "0" * 64
    tampered["quarantined_sites"] = []
    differences = diff_fault_snapshots(golden, tampered)
    assert any(line.startswith("record_id:") for line in differences)
    assert any(line.startswith("quarantined_sites") for line in differences)


@pytest.mark.goldens
@pytest.mark.faults
@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_small_fault_golden_reproduces_bit_for_bit(scheme):
    assert verify_golden(scheme, "small", kind="faults") == []


# -- the trend + triage analytics goldens -----------------------------------------


def test_store_holds_triage_goldens_for_every_scheme():
    names = {path.name for path in stored_goldens()}
    for scheme in RNG_SCHEMES:
        assert golden_path(scheme, "small", kind="triage").name in names


def test_triage_golden_pins_the_analytics_contract():
    for scheme in RNG_SCHEMES:
        snapshot = load_golden(scheme, "small", kind="triage")
        assert snapshot["kind"] == "triage-analytics"
        # The hard contracts: recomputing the analytics over the same store
        # and re-ingesting the campaigns in reverse order both reproduce
        # the trend and triage record bodies byte for byte.
        assert snapshot["recompute_identical"] is True
        assert snapshot["permutation_identical"] is True
        assert snapshot["campaign_records"] == TRIAGE_SCALES["small"]["seeds"]
        assert len(snapshot["trend_record_id"]) == 64
        assert len(snapshot["triage_record_id"]) == 64
        trend = snapshot["trend"]
        assert len(trend["points"]) == TRIAGE_SCALES["small"]["seeds"]
        assert trend["drift"] is not None
        triage = snapshot["triage"]
        assert sum(triage["bucket_counts"].values()) == len(triage["verdicts"])
        for verdict in triage["verdicts"]:
            assert [hint["name"] for hint in verdict["hints"]] == [
                "agreement", "filter_rejection", "resilience_losses", "ci_width",
            ]
    # The analytics flow through the scheme-seeded bootstrap, so every
    # scheme pins different record ids.
    ids = {load_golden(s, "small", kind="triage")["triage_record_id"] for s in RNG_SCHEMES}
    assert len(ids) == len(RNG_SCHEMES)


def test_triage_diff_detects_tampered_verdict_and_record_id():
    golden = load_golden(RNG_SCHEMES[0], "small", kind="triage")
    tampered = json.loads(json.dumps(golden))
    tampered["triage_record_id"] = "0" * 64
    tampered["triage"]["verdicts"][0]["bucket"] = "needs-review"
    differences = diff_triage_snapshots(golden, tampered)
    assert any(line.startswith("triage_record_id:") for line in differences)
    assert any("verdicts" in line and "bucket" in line for line in differences)


@pytest.mark.goldens
@pytest.mark.analytics
@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_small_triage_golden_reproduces_bit_for_bit(scheme):
    assert verify_golden(scheme, "small", kind="triage") == []


# -- tier-2: bench- and full-scale reproduction ---------------------------------


@pytest.mark.tier2
@pytest.mark.goldens
@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_bench_golden_reproduces_bit_for_bit(scheme):
    assert verify_golden(scheme, "bench") == []


@pytest.mark.tier2
@pytest.mark.goldens
def test_full_scale_v2_golden_reproduces_bit_for_bit():
    assert verify_golden(SCHEME_SPLITMIX64_V2, "full") == []


@pytest.mark.tier2
@pytest.mark.goldens
def test_full_scale_v1_golden_reproduces_bit_for_bit():
    assert verify_golden(SCHEME_SHA256_V1, "full") == []
