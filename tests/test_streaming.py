"""Streaming campaign execution and the edge-case bugfix sweep.

The streaming pipeline (:mod:`repro.core.streaming`) re-executes campaigns
in fixed-size participant chunks under one hard contract: **bit-identical
outputs** — the same clean dataset, Table 1 row, per-site UPLT, helper
effect, and warehouse record bytes as the batch runner, under both RNG
schemes, with and without a checkpointed kill+resume.  These tests pin that
contract, plus the satellite fixes that rode along: the
``bootstrap_mean_ci`` resamples guard, the backoff jitter-after-cap clamp,
8-digit checkpoint chunk names (with legacy 5-digit reads), the sharded
warehouse record layout, and ``ResponseDataset.extend``.

The 100k-participant bounded-memory check is marked ``tier2``:
``PYTHONPATH=src python -m pytest -m tier2 tests/test_streaming.py``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.capture.webpeg import CaptureCache, CaptureSettings, Webpeg
from repro.core.campaign import CampaignConfig, CampaignRunner
from repro.core.experiment import ABExperiment, TimelineExperiment, build_ab_pairs
from repro.core.responses import ResponseDataset, TimelineResponse
from repro.core.storage import dataset_to_dict
from repro.core.validation import FilterConfig
from repro.errors import AnalysisError, CampaignError, CampaignInterrupted
from repro.faults import CheckpointStore, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.rng import RNG_SCHEMES, SeededRNG
from repro.warehouse import ResultsWarehouse, bootstrap_mean_ci
from repro.web.corpus import CorpusGenerator

#: Matches tests/conftest.py's TEST_SEED (not imported: the name `conftest`
#: is ambiguous when tests/ and benchmarks/ are collected together).
TEST_SEED = 77

PARTICIPANTS = 40
CHUNK = 16  # deliberately does not divide PARTICIPANTS: last chunk is ragged


# -- shared per-scheme artefacts ------------------------------------------------

_SCHEME_CACHE = {}


def _scheme_artefacts(scheme):
    """Videos + experiments captured under one scheme (built once per run).

    Each scheme gets its own private :class:`CaptureCache` — the process-wide
    default cache is pinned to the first scheme that touches it and would
    reject cross-scheme reuse.
    """
    if scheme not in _SCHEME_CACHE:
        pages = CorpusGenerator(seed=TEST_SEED).http2_sample(5)
        settings = CaptureSettings(loads_per_site=2, network_profile="cable-intl",
                                   record_after_onload=2.0)
        h2tool = Webpeg(settings=settings, seed=TEST_SEED, rng_scheme=scheme,
                        cache=CaptureCache())
        h1tool = Webpeg(settings=settings, seed=TEST_SEED, rng_scheme=scheme,
                        cache=CaptureCache())
        h2 = {p.site_id: h2tool.capture(p, configuration="h2").video for p in pages}
        h1 = {p.site_id: h1tool.capture(p, configuration="h1").video for p in pages}
        timeline = TimelineExperiment(experiment_id="stream-timeline",
                                      videos=list(h2.values()))
        pairs = build_ab_pairs(h1, h2, label_a="h1", label_b="h2",
                               rng=SeededRNG(TEST_SEED, scheme))
        ab = ABExperiment(experiment_id="stream-ab", pairs=pairs)
        _SCHEME_CACHE[scheme] = (timeline, ab)
    return _SCHEME_CACHE[scheme]


def _config(scheme, campaign_id="stream-test", filter_config=None):
    return CampaignConfig(campaign_id=campaign_id, participant_count=PARTICIPANTS,
                          seed=TEST_SEED, rng_scheme=scheme,
                          filter_config=filter_config, network_profile="cable-intl")


def _fsck_clean(report):
    return report.index_ok and not (report.corrupt or report.missing or report.unindexed)


def _assert_streaming_matches_batch(batch, stream):
    """The full aggregate-equality contract between the two runners."""
    assert stream.clean_dataset is not None  # keep_dataset=True in callers
    assert dataset_to_dict(stream.clean_dataset) == dataset_to_dict(batch.clean_dataset)
    assert stream.table1_row == batch.table1_row
    assert stream.videos_served == batch.videos_served


# -- streaming vs batch equivalence ---------------------------------------------

@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_timeline_streaming_matches_batch(scheme):
    """Timeline (wisdom on): dataset, Table 1, UPLT and helper means match."""
    from repro.core.analysis import mean_uplt_per_site, slider_vs_submitted

    timeline, _ = _scheme_artefacts(scheme)
    batch = CampaignRunner(_config(scheme)).run_timeline(timeline)
    stream = CampaignRunner(_config(scheme)).run_timeline_streaming(
        timeline, chunk_size=CHUNK, keep_dataset=True)

    _assert_streaming_matches_batch(batch, stream)
    # Key order matters too: downstream serialisation iterates these dicts.
    assert stream.uplt_by_site == mean_uplt_per_site(batch.clean_dataset)
    assert list(stream.uplt_by_site) == list(mean_uplt_per_site(batch.clean_dataset))
    assert stream.helper_effect == slider_vs_submitted(batch.clean_dataset)
    assert stream.chunks_total == -(-PARTICIPANTS // CHUNK)
    assert stream.chunks_executed == stream.chunks_total


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_ab_streaming_matches_batch(scheme):
    """A/B: control injection streams serially, responses stay identical."""
    _, ab = _scheme_artefacts(scheme)
    batch = CampaignRunner(_config(scheme)).run_ab(ab)
    stream = CampaignRunner(_config(scheme)).run_ab_streaming(
        ab, chunk_size=CHUNK, keep_dataset=True)
    _assert_streaming_matches_batch(batch, stream)


def test_timeline_streaming_matches_batch_wisdom_off():
    """With the wisdom filter off, the passthrough path is also identical."""
    scheme = RNG_SCHEMES[0]
    timeline, _ = _scheme_artefacts(scheme)
    cfg = FilterConfig(apply_wisdom=False)
    batch = CampaignRunner(_config(scheme, filter_config=cfg)).run_timeline(timeline)
    stream = CampaignRunner(_config(scheme, filter_config=cfg)).run_timeline_streaming(
        timeline, chunk_size=CHUNK, keep_dataset=True)
    _assert_streaming_matches_batch(batch, stream)


def test_streaming_rejects_invalid_chunk_size():
    scheme = RNG_SCHEMES[0]
    timeline, _ = _scheme_artefacts(scheme)
    with pytest.raises(CampaignError):
        CampaignRunner(_config(scheme)).run_timeline_streaming(timeline, chunk_size=0)


# -- warehouse: streaming ingest + sharded layout -------------------------------

@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_streaming_ingest_record_bytes_identical(tmp_path, scheme):
    """The incrementally-streamed record is byte-for-byte the batch record."""
    timeline, _ = _scheme_artefacts(scheme)
    batch_wh = ResultsWarehouse(tmp_path / "batch")
    stream_wh = ResultsWarehouse(tmp_path / "stream")

    batch = CampaignRunner(_config(scheme)).run_timeline(timeline)
    batch_record = batch_wh.ingest(batch)
    stream = CampaignRunner(_config(scheme)).run_timeline_streaming(
        timeline, chunk_size=CHUNK, warehouse=stream_wh)
    stream_record = stream.warehouse_record

    assert stream_record is not None
    assert stream_record.record_id == batch_record.record_id
    assert stream_record.path.read_bytes() == batch_record.path.read_bytes()
    # Both ingest paths write the sharded layout: records/<id[:2]>/<id>.json.
    for record in (batch_record, stream_record):
        assert record.path.parent.name == record.record_id[:2]
    # The streamed store is structurally sound and queryable.
    assert _fsck_clean(stream_wh.fsck())
    assert [r.record_id for r in stream_wh.query(scheme=scheme)] == [stream_record.record_id]


def test_legacy_flat_records_stay_readable(tmp_path):
    """Pre-sharding stores (flat records/<id>.json) read, fsck and reindex."""
    scheme = RNG_SCHEMES[0]
    timeline, _ = _scheme_artefacts(scheme)
    warehouse = ResultsWarehouse(tmp_path / "wh")
    batch = CampaignRunner(_config(scheme)).run_timeline(timeline)
    record = warehouse.ingest(batch)

    # Demote the record to the legacy flat layout, as an old store had it.
    sharded = record.path
    flat = sharded.parent.parent / sharded.name
    sharded.rename(flat)
    sharded.parent.rmdir()

    fresh = ResultsWarehouse(tmp_path / "wh")
    [found] = fresh.query(scheme=scheme)
    assert found.record_id == record.record_id
    assert found.path == flat
    assert found.load()["campaign_id"] == batch.config.campaign_id
    assert _fsck_clean(fresh.fsck())
    # Reindex discovers flat records too (e.g. after a lost index).
    (tmp_path / "wh" / "index.json").unlink()
    rebuilt = ResultsWarehouse(tmp_path / "wh")
    assert rebuilt.reindex() == 1
    assert [r.record_id for r in rebuilt.query(scheme=scheme)] == [record.record_id]


# -- checkpointed kill+resume ---------------------------------------------------

def test_streaming_kill_and_resume_is_bit_identical(tmp_path):
    """A killed-then-resumed streaming campaign reproduces the record bytes."""
    scheme = RNG_SCHEMES[0]
    timeline, _ = _scheme_artefacts(scheme)

    baseline_wh = ResultsWarehouse(tmp_path / "baseline")
    baseline = CampaignRunner(_config(scheme)).run_timeline_streaming(
        timeline, chunk_size=CHUNK, warehouse=baseline_wh, keep_dataset=True)

    ckpt = tmp_path / "ckpt"
    with pytest.raises(CampaignInterrupted) as exc:
        CampaignRunner(_config(scheme)).run_timeline_streaming(
            timeline, chunk_size=CHUNK, checkpoint_dir=ckpt, stop_after_chunks=1)
    assert exc.value.completed_chunks == 1

    resumed_wh = ResultsWarehouse(tmp_path / "resumed")
    resumed = CampaignRunner(_config(scheme)).run_timeline_streaming(
        timeline, chunk_size=CHUNK, checkpoint_dir=ckpt,
        warehouse=resumed_wh, keep_dataset=True)
    assert resumed.chunks_executed < resumed.chunks_total  # chunk 0 came from disk
    assert dataset_to_dict(resumed.clean_dataset) == dataset_to_dict(baseline.clean_dataset)
    assert resumed.table1_row == baseline.table1_row
    assert resumed.warehouse_record.record_id == baseline.warehouse_record.record_id
    assert resumed.warehouse_record.path.read_bytes() == \
        baseline.warehouse_record.path.read_bytes()


def test_checkpoint_chunk_names_are_8_digits_with_legacy_reads(tmp_path):
    """Chunk files sort lexicographically past index 99,999; 5-digit files load."""
    store = CheckpointStore(tmp_path / "ckpt", {"campaign": "x"})
    for index in (0, 99999, 100000):
        store.save_chunk(index, {"pids": [f"p{index}"], "results": [index]})
    names = sorted(p.name for p in (tmp_path / "ckpt").glob("chunk-*.pkl"))
    assert names == ["chunk-00000000.pkl", "chunk-00099999.pkl", "chunk-00100000.pkl"]
    # Lexicographic order == numeric order at the 5→6 digit boundary.
    assert names == [f"chunk-{i:08d}.pkl" for i in (0, 99999, 100000)]

    # A chunk written by the old 5-digit layout is still found and loaded.
    legacy = tmp_path / "ckpt" / "chunk-00007.pkl"
    legacy.write_bytes(pickle.dumps({"pids": ["legacy"], "results": ["ok"]}))
    assert store.has_chunk(7)
    assert store.load_chunk(7) == {"pids": ["legacy"], "results": ["ok"]}


# -- satellite regressions ------------------------------------------------------

def test_bootstrap_mean_ci_rejects_zero_resamples():
    """resamples=0 must raise, not return a degenerate all-zero interval."""
    with pytest.raises(AnalysisError):
        bootstrap_mean_ci([1.0, 2.0, 3.0], resamples=0)
    with pytest.raises(AnalysisError):
        bootstrap_mean_ci([1.0, 2.0, 3.0], resamples=-5)


def test_backoff_jitter_is_clamped_after_cap():
    """max_delay_seconds bounds the *jittered* delay, not just the base."""
    policy = RetryPolicy(max_attempts=5, base_delay_seconds=1.5, multiplier=2.0,
                         max_delay_seconds=2.0, jitter_fraction=0.5)
    plan = FaultPlan(seed=TEST_SEED)
    jitter_would_exceed = 0
    for label_index in range(20):
        label = f"op:{label_index}"
        for attempt in range(4):
            delay = policy.backoff_delay(plan, label, attempt)
            assert delay <= policy.max_delay_seconds
            raw = min(policy.base_delay_seconds * policy.multiplier ** attempt,
                      policy.max_delay_seconds)
            u = SeededRNG(plan.seed, plan.rng_scheme).fork_random(
                f"backoff:{label}:a{attempt}")
            unclamped = raw * (1.0 + policy.jitter_fraction * (2.0 * u - 1.0))
            if unclamped > policy.max_delay_seconds:
                jitter_would_exceed += 1
                assert delay == policy.max_delay_seconds
    # The clamp must actually have been exercised, or this test proves nothing.
    assert jitter_would_exceed > 0


def test_response_dataset_extend_merges_in_place():
    def response(pid, video_id):
        from repro.crowd.behavior import VideoInteraction

        interaction = VideoInteraction(
            video_transfer_seconds=1.0, watch_seconds=5.0, instruction_seconds=1.0,
            out_of_focus_seconds=0.0, play_actions=1, pause_actions=1,
            seek_actions=0, watched_video=True,
        )
        return TimelineResponse(
            participant_id=pid, video_id=video_id, site_id="site-000",
            slider_time=1.0, helper_time=None, submitted_time=1.5,
            saw_control_frame=False, control_passed=None,
            interaction=interaction,
        )

    base = ResponseDataset(campaign_id="c", experiment_type="timeline")
    base.add_timeline_response(response("p1", "v1"))
    other = ResponseDataset(campaign_id="c", experiment_type="timeline")
    other.add_timeline_response(response("p2", "v2"))

    base.extend(other)
    assert [r.participant_id for r in base.timeline_responses] == ["p1", "p2"]

    mismatched = ResponseDataset(campaign_id="c", experiment_type="ab")
    with pytest.raises(AnalysisError):
        base.extend(mismatched)


# -- bounded memory (tier 2) ----------------------------------------------------

@pytest.mark.tier2
def test_streaming_campaign_memory_stays_flat_at_100k():
    """100k participants must peak within ~2x of 1k (O(chunk), not O(n))."""
    from repro.perf.memory import measure_streaming_campaign_peak

    small = measure_streaming_campaign_peak(
        sites=10, participants=1_000, loads=2, seed=TEST_SEED, chunk_size=512,
        rng_scheme="splitmix64-v2")
    large = measure_streaming_campaign_peak(
        sites=10, participants=100_000, loads=2, seed=TEST_SEED, chunk_size=512,
        rng_scheme="splitmix64-v2")
    assert large["peak_bytes"] <= 2.0 * small["peak_bytes"], (small, large)
