"""Tests for the struct-of-arrays session kernel (``splitmix64-batch-v3``).

The kernel's contract: under v3, one counter-stream slot block per
(participant, task) replaces the object-graph draw sites, and a session is a
pure function of (participant, tasks, session seed).  These tests pin the
consequences — cohort-call ≡ per-session calls ≡ the ``ParticipantSession``
wrapper, serial ≡ process pool, fixed per-task slot budgets (truncation is
prefix-preserving), and the zero-control telemetry regression.
"""

from __future__ import annotations

import pytest

from repro.capture.webpeg import CaptureCache, CaptureSettings, Webpeg
from repro.core.campaign import CampaignConfig, CampaignRunner
from repro.core.experiment import ABExperiment, TimelineExperiment, build_ab_pairs
from repro.core.frame_helper import FrameSelectionHelper
from repro.core.session import ParticipantSession
from repro.core.session_kernel import (
    AB_SLOTS,
    TIMELINE_SLOTS,
    kernel_stream_seed,
    run_cohort_kernel,
    run_session_kernel,
)
from repro.core.storage import dataset_to_dict
from repro.crowd.participant import ParticipantClass, generate_participant
from repro.errors import ExperimentError
from repro.rng import SCHEME_SPLITMIX64_BATCH_V3 as V3
from repro.rng import SeededRNG, counter_uniforms
from repro.web.corpus import CorpusGenerator

SEED = 77


@pytest.fixture(scope="module")
def artefacts():
    """A small v3-captured corpus: timeline + A/B experiments."""
    pages = CorpusGenerator(seed=SEED).http2_sample(4)
    settings = CaptureSettings(loads_per_site=2, network_profile="cable-intl",
                               record_after_onload=2.0)
    h2tool = Webpeg(settings=settings, seed=SEED, rng_scheme=V3, cache=CaptureCache())
    h1tool = Webpeg(settings=settings, seed=SEED, rng_scheme=V3, cache=CaptureCache())
    h2 = {p.site_id: h2tool.capture(p, configuration="h2").video for p in pages}
    h1 = {p.site_id: h1tool.capture(p, configuration="h1").video for p in pages}
    timeline = TimelineExperiment(experiment_id="kernel-timeline", videos=list(h2.values()))
    pairs = build_ab_pairs(h1, h2, label_a="h1", label_b="h2", rng=SeededRNG(SEED, V3))
    ab = ABExperiment(experiment_id="kernel-ab", pairs=pairs)
    return timeline, ab


@pytest.fixture(scope="module")
def cohort():
    return [
        generate_participant(f"kern-{i:03d}", ParticipantClass.PAID, "crowdflower",
                             SeededRNG(SEED + i, V3))
        for i in range(12)
    ]


def _session_result_dict(result):
    from dataclasses import asdict
    return [asdict(r) for r in result.responses] + [asdict(result.telemetry)]


def test_wrapper_delegates_to_kernel_under_v3(artefacts, cohort):
    """ParticipantSession under v3 is exactly the kernel on the forked seed."""
    timeline, ab = artefacts
    participant = cohort[0]
    parent = SeededRNG(SEED, V3)
    session_seed = parent.fork_once(f"session:{participant.participant_id}").seed

    wrapped = ParticipantSession(participant, parent).run_timeline(timeline.videos[:3])
    direct = run_session_kernel("timeline", participant, timeline.videos[:3], session_seed)
    assert _session_result_dict(wrapped) == _session_result_dict(direct)

    wrapped_ab = ParticipantSession(participant, parent).run_ab(ab.pairs[:3])
    direct_ab = run_session_kernel("ab", participant, ab.pairs[:3], session_seed)
    assert _session_result_dict(wrapped_ab) == _session_result_dict(direct_ab)


def test_cohort_call_equals_per_session_calls(artefacts, cohort):
    """One cohort call ≡ independent per-participant kernel calls, any order."""
    timeline, _ = artefacts
    batch = [(p, timeline.videos[:3]) for p in cohort]
    parent_seed = SeededRNG(SEED, V3).seed
    together = run_cohort_kernel("timeline", batch, parent_seed)
    parent = SeededRNG(SEED, V3)
    apart = [
        run_session_kernel(
            "timeline", p, tasks, parent.fork_once(f"session:{p.participant_id}").seed
        )
        for p, tasks in reversed(batch)
    ]
    for joint, solo in zip(together, reversed(apart)):
        assert _session_result_dict(joint) == _session_result_dict(solo)


def test_task_truncation_is_prefix_preserving(artefacts, cohort):
    """Fixed slot budgets: dropping trailing tasks never shifts earlier draws."""
    timeline, ab = artefacts
    participant = cohort[1]
    seed = 12345
    full = run_session_kernel("timeline", participant, timeline.videos, seed)
    cut = run_session_kernel("timeline", participant, timeline.videos[:2], seed)
    from dataclasses import asdict
    assert [asdict(r) for r in full.responses[:2]] == [asdict(r) for r in cut.responses]
    full_ab = run_session_kernel("ab", participant, ab.pairs[:4], seed)
    cut_ab = run_session_kernel("ab", participant, ab.pairs[:2], seed)
    assert [asdict(r) for r in full_ab.responses[:2]] == [asdict(r) for r in cut_ab.responses]


def test_kernel_slot_blocks_come_from_the_counter_stream(artefacts, cohort):
    """The kernel consumes exactly TIMELINE_SLOTS/AB_SLOTS slots per task at
    fixed offsets of the participant's kernel stream."""
    seed = 987
    stream = counter_uniforms(kernel_stream_seed(seed), 0, 3 * TIMELINE_SLOTS)
    per_task = counter_uniforms(kernel_stream_seed(seed), TIMELINE_SLOTS, TIMELINE_SLOTS)
    assert stream[TIMELINE_SLOTS:2 * TIMELINE_SLOTS] == per_task
    assert AB_SLOTS < TIMELINE_SLOTS


def test_kernel_rejects_empty_task_lists(cohort):
    with pytest.raises(ExperimentError):
        run_session_kernel("timeline", cohort[0], [], 1)
    with pytest.raises(ExperimentError):
        run_session_kernel("ab", cohort[0], [], 1)


def test_session_with_no_controls_has_defined_pass_rate(artefacts, cohort):
    """Zero-control roster regression: a disabled helper sees no controls and
    the pass rate must stay defined (1.0), not divide by zero."""
    timeline, _ = artefacts
    disabled = FrameSelectionHelper(enabled=False)
    for rng in (SeededRNG(3), SeededRNG(3, V3)):
        session = ParticipantSession(cohort[2], rng, frame_helper=disabled)
        result = session.run_timeline(timeline.videos[:3])
        assert result.telemetry.controls_seen == 0
        assert result.telemetry.control_pass_rate == 1.0


def test_v3_campaign_serial_equals_pool(artefacts):
    """The cohort-kernel serial path and the process pool are bit-identical."""
    timeline, _ = artefacts
    serial = CampaignRunner(CampaignConfig(
        campaign_id="kernel-pool", participant_count=16, seed=SEED, rng_scheme=V3,
        network_profile="cable-intl",
    )).run_timeline(timeline)
    pooled = CampaignRunner(CampaignConfig(
        campaign_id="kernel-pool", participant_count=16, seed=SEED, rng_scheme=V3,
        parallel_workers=2, network_profile="cable-intl",
    )).run_timeline(timeline)
    assert dataset_to_dict(serial.clean_dataset) == dataset_to_dict(pooled.clean_dataset)
    assert serial.table1_row == pooled.table1_row


def test_v3_ab_campaign_serial_equals_pool(artefacts):
    _, ab = artefacts
    serial = CampaignRunner(CampaignConfig(
        campaign_id="kernel-ab-pool", participant_count=16, seed=SEED, rng_scheme=V3,
        network_profile="cable-intl",
    )).run_ab(ab)
    pooled = CampaignRunner(CampaignConfig(
        campaign_id="kernel-ab-pool", participant_count=16, seed=SEED, rng_scheme=V3,
        parallel_workers=2, network_profile="cable-intl",
    )).run_ab(ab)
    assert dataset_to_dict(serial.clean_dataset) == dataset_to_dict(pooled.clean_dataset)
    assert serial.table1_row == pooled.table1_row
