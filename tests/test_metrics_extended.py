"""Tests for the extended PLT metrics (ByteIndex, ObjectIndex, AFT, ...)."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.metrics.extended import (
    above_the_fold_time,
    byte_index,
    dom_content_loaded,
    extended_metrics_from_load,
    object_index,
    time_to_first_byte,
)
from repro.metrics.plt import metrics_from_load


def test_extended_metrics_positive_and_consistent(load_result):
    metrics = extended_metrics_from_load(load_result)
    values = metrics.as_dict()
    assert set(values) == {
        "byteindex", "objectindex", "timetofirstbyte", "abovethefoldtime", "domcontentloaded",
    }
    assert all(value >= 0 for value in values.values())


def test_ttfb_before_onload(load_result):
    assert time_to_first_byte(load_result) < load_result.onload


def test_byteindex_and_objectindex_bounded_by_fully_loaded(load_result):
    assert 0.0 < byte_index(load_result) <= load_result.fully_loaded
    assert 0.0 < object_index(load_result) <= load_result.fully_loaded


def test_aft_between_first_and_last_visual_change(load_result):
    aft = above_the_fold_time(load_result)
    assert load_result.first_visual_change <= aft <= load_result.last_visual_change


def test_aft_ignores_small_late_changes(load_result):
    strict = above_the_fold_time(load_result, small_change_fraction=0.0)
    lenient = above_the_fold_time(load_result, small_change_fraction=0.2)
    assert lenient <= strict


def test_dcl_before_or_near_onload(load_result):
    dcl = dom_content_loaded(load_result)
    plt = metrics_from_load(load_result)
    assert dcl <= plt.onload + 1e-6
    assert dcl >= plt.firstvisualchange - 1.0


def test_extended_metrics_error_on_empty():
    class FakeResult:
        fetch_records = []

    with pytest.raises(AnalysisError):
        byte_index(FakeResult())
    with pytest.raises(AnalysisError):
        object_index(FakeResult())
