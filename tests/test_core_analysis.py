"""Tests for the analysis module."""

from __future__ import annotations

import pytest

from repro.core.analysis import (
    ab_agreement,
    agreement_per_pair,
    agreement_vs_metric_delta,
    cdf_points,
    classify_all_distributions,
    classify_distribution,
    fraction_at_or_below,
    mean,
    mean_uplt_per_site,
    mean_uplt_per_video,
    median,
    no_difference_fraction_per_site,
    score_per_site,
    slider_vs_submitted,
    stdev,
    summarise_behaviour,
    uplt_stdev_per_video,
    uplt_values,
)
from repro.core.responses import ABResponse, ResponseDataset
from repro.crowd.behavior import VideoInteraction
from repro.errors import AnalysisError


def interaction() -> VideoInteraction:
    return VideoInteraction(
        video_transfer_seconds=1.0, watch_seconds=10.0, instruction_seconds=2.0,
        out_of_focus_seconds=0.0, play_actions=1, pause_actions=0, seek_actions=3,
        watched_video=True,
    )


def ab_response(participant: str, pair: str, site: str, choice: str, label: str,
                is_control: bool = False) -> ABResponse:
    return ABResponse(
        participant_id=participant, pair_id=pair, site_id=site, choice=choice,
        choice_label=label, is_control=is_control, control_passed=None, interaction=interaction(),
    )


# -- generic statistics ----------------------------------------------------------------


def test_mean_stdev_median():
    assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    assert stdev([2.0, 2.0, 2.0]) == pytest.approx(0.0)
    assert stdev([5.0]) == 0.0
    assert median([1.0, 2.0, 100.0]) == pytest.approx(2.0)
    with pytest.raises(AnalysisError):
        mean([])
    with pytest.raises(AnalysisError):
        stdev([])


def test_cdf_points_monotonic():
    points = cdf_points([3.0, 1.0, 2.0])
    values = [p[0] for p in points]
    fractions = [p[1] for p in points]
    assert values == sorted(values)
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)
    with pytest.raises(AnalysisError):
        cdf_points([])


def test_fraction_at_or_below():
    assert fraction_at_or_below([1, 2, 3, 4], 2) == pytest.approx(0.5)


# -- timeline analysis -------------------------------------------------------------------


def test_mean_uplt_per_video_and_site(timeline_campaign):
    per_video = mean_uplt_per_video(timeline_campaign.clean_dataset)
    per_site = mean_uplt_per_site(timeline_campaign.clean_dataset)
    assert per_video
    assert per_site
    assert all(value > 0 for value in per_video.values())
    assert all(value > 0 for value in per_site.values())


def test_uplt_values_exclude_controls(timeline_campaign):
    dataset = timeline_campaign.raw_dataset
    video_id = dataset.video_ids()[0]
    with_controls = uplt_values(dataset, video_id, include_controls=True)
    without = uplt_values(dataset, video_id, include_controls=False)
    assert len(without) <= len(with_controls)


def test_uplt_stdev_shrinks_with_percentile_window(timeline_campaign):
    dataset = timeline_campaign.raw_dataset
    full = uplt_stdev_per_video(dataset)
    windowed = uplt_stdev_per_video(dataset, percentile_window=(25, 75))
    common = set(full) & set(windowed)
    assert common
    assert sum(windowed[v] for v in common) <= sum(full[v] for v in common) + 1e-9


def test_slider_vs_submitted_keys(timeline_campaign):
    effect = slider_vs_submitted(timeline_campaign.clean_dataset)
    assert effect
    for stats in effect.values():
        assert set(stats) == {"slider", "frame_helper", "submitted"}


def test_classify_distribution_shapes():
    tight = classify_distribution("v", [2.0, 2.1, 2.2, 1.9, 2.05] * 5)
    assert tight.shape == "tight"
    spread = classify_distribution("v", [1 + 0.4 * i for i in range(25)])
    assert spread.shape in ("spread", "multimodal")
    bimodal = classify_distribution("v", [2.0 + 0.1 * (i % 5) for i in range(20)] + [8.0 + 0.1 * (i % 5) for i in range(20)])
    assert bimodal.shape == "multimodal"
    assert len(bimodal.modes) >= 2
    with pytest.raises(AnalysisError):
        classify_distribution("v", [])


def test_classify_all_distributions(timeline_campaign):
    shapes = classify_all_distributions(timeline_campaign.raw_dataset)
    assert shapes
    assert all(s.shape in ("tight", "spread", "multimodal") for s in shapes.values())


# -- A/B analysis --------------------------------------------------------------------------


def test_ab_agreement_majority():
    responses = [
        ab_response("p1", "pair", "s", "left", "h1"),
        ab_response("p2", "pair", "s", "left", "h1"),
        ab_response("p3", "pair", "s", "right", "h2"),
        ab_response("p4", "pair", "s", "no_difference", "no_difference"),
    ]
    assert ab_agreement(responses) == pytest.approx(0.5)
    with pytest.raises(AnalysisError):
        ab_agreement([])


def test_agreement_per_pair_range(ab_campaign):
    agreement = agreement_per_pair(ab_campaign.clean_dataset)
    assert agreement
    assert all(1 / 3 - 1e-9 <= value <= 1.0 for value in agreement.values())


def test_score_per_site_definition():
    dataset = ResponseDataset(campaign_id="c", experiment_type="ab")
    dataset.add_ab_response(ab_response("p1", "pair-a", "site-a", "left", "h2"))
    dataset.add_ab_response(ab_response("p2", "pair-a", "site-a", "right", "h1"))
    dataset.add_ab_response(ab_response("p3", "pair-a", "site-a", "left", "h2"))
    dataset.add_ab_response(ab_response("p4", "pair-a", "site-a", "no_difference", "no_difference"))
    scores = score_per_site(dataset, treatment_label="h2")
    # 3 decisive responses, 2 for h2.
    assert scores["site-a"] == pytest.approx(2 / 3)
    nd = no_difference_fraction_per_site(dataset)
    assert nd["site-a"] == pytest.approx(1 / 4)


def test_scores_within_unit_interval(ab_campaign):
    scores = score_per_site(ab_campaign.clean_dataset, treatment_label="h2")
    assert scores
    assert all(0.0 <= value <= 1.0 for value in scores.values())


def test_agreement_vs_metric_delta_monotone_shape(ab_campaign, video_pair):
    from repro.metrics.plt import METRIC_NAMES, metrics_from_video

    h1, h2 = video_pair
    deltas = {
        site: {
            name: abs(metrics_from_video(h1[site]).get(name) - metrics_from_video(h2[site]).get(name))
            for name in METRIC_NAMES
        }
        for site in h1
    }
    series = agreement_vs_metric_delta(ab_campaign.clean_dataset, deltas)
    assert set(series) <= set(METRIC_NAMES)
    for points in series.values():
        assert all(40.0 <= agreement <= 100.0 for _, agreement in points)


# -- behaviour summaries ---------------------------------------------------------------------


def test_summarise_behaviour(timeline_campaign):
    summary = summarise_behaviour(timeline_campaign.raw_dataset, timeline_campaign.telemetry)
    assert "paid" in summary.time_on_site_minutes
    assert len(summary.time_on_site_minutes["paid"]) == timeline_campaign.raw_dataset.participant_count
    assert all(value >= 0 for value in summary.out_of_focus_seconds["paid"])
    assert 0.0 <= summary.control_correct_fraction.get("paid", 1.0) <= 1.0
