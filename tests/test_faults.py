"""Chaos tests: fault plans, resilience machinery, checkpoint/resume, fsck.

Everything here carries the ``faults`` marker; the handful of slower
kill+resume trips are additionally tier-2 (the small ones stay tier-1 so
the default suite proves the resilience contract on every run).
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import pytest

from repro.capture.webpeg import DEFAULT_CAPTURE_CACHE
from repro.errors import (
    CampaignInterrupted,
    CheckpointError,
    CircuitOpenError,
    ConfigurationError,
    RetryExhaustedError,
    WarehouseCorruptionError,
)
from repro.faults import (
    BOUNDARY_CAPTURE,
    BOUNDARY_DROPOUT,
    BOUNDARY_STALL,
    BOUNDARY_WAREHOUSE,
    BOUNDARY_WORKER,
    NO_FAULTS,
    CheckpointStore,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.rng import RNG_SCHEMES, SCHEME_SHA256_V1, SCHEME_SPLITMIX64_V2
from repro.warehouse import ResultsWarehouse

pytestmark = pytest.mark.faults

BOUNDARIES = (BOUNDARY_CAPTURE, BOUNDARY_STALL, BOUNDARY_DROPOUT,
              BOUNDARY_WORKER, BOUNDARY_WAREHOUSE)


def _small_campaign(**overrides):
    """One tiny PLT campaign (3 sites, 10 participants) with fresh captures."""
    from repro.experiments.plt_campaign import run_plt_campaign

    kwargs = dict(sites=3, participants=10, loads_per_site=2, seed=2016)
    kwargs.update(overrides)
    DEFAULT_CAPTURE_CACHE.clear()
    try:
        return run_plt_campaign(**kwargs)
    finally:
        DEFAULT_CAPTURE_CACHE.clear()


# -- the plan ---------------------------------------------------------------------


def test_plan_validates_rates_and_scheme():
    with pytest.raises(ConfigurationError, match="capture_failure_rate"):
        FaultPlan(capture_failure_rate=1.5)
    with pytest.raises(ConfigurationError, match="torn_write_rate"):
        FaultPlan(torn_write_rate=-0.1)
    with pytest.raises(Exception):
        FaultPlan(rng_scheme="md5-v0")
    with pytest.raises(ConfigurationError, match="unknown fault boundary"):
        NO_FAULTS.rate_for("cosmic-rays")


def test_no_faults_is_inert():
    assert not NO_FAULTS.enabled
    for boundary in BOUNDARIES:
        assert not NO_FAULTS.fires(boundary, "site-000")
    assert NO_FAULTS.dropout_after("p-1", 6) is None


def test_plan_decisions_are_deterministic_and_order_independent():
    plan = FaultPlan(seed=42, capture_failure_rate=0.5, dropout_rate=0.5,
                     worker_crash_rate=0.5, torn_write_rate=0.5,
                     capture_stall_rate=0.5)
    grid = [(b, f"unit-{i:03d}", a) for b in BOUNDARIES for i in range(20) for a in range(3)]
    forward = [plan.fires(*cell) for cell in grid]
    backward = [plan.fires(*cell) for cell in reversed(grid)]
    assert forward == list(reversed(backward))
    assert any(forward) and not all(forward)


def test_plan_decisions_differ_across_schemes_and_seeds():
    grid = [(BOUNDARY_CAPTURE, f"site-{i:03d}", a) for i in range(50) for a in range(3)]
    v1 = FaultPlan(seed=7, rng_scheme=SCHEME_SHA256_V1, capture_failure_rate=0.5)
    v2 = FaultPlan(seed=7, rng_scheme=SCHEME_SPLITMIX64_V2, capture_failure_rate=0.5)
    reseeded = FaultPlan(seed=8, rng_scheme=SCHEME_SHA256_V1, capture_failure_rate=0.5)
    decisions = lambda plan: [plan.fires(*cell) for cell in grid]  # noqa: E731
    assert decisions(v1) != decisions(v2)
    assert decisions(v1) != decisions(reseeded)


def test_plan_survives_pickling():
    plan = FaultPlan(seed=3, capture_failure_rate=0.5, dropout_rate=0.3)
    clone = pickle.loads(pickle.dumps(plan))
    cells = [(BOUNDARY_CAPTURE, f"s{i}", a) for i in range(20) for a in range(3)]
    assert [plan.fires(*c) for c in cells] == [clone.fires(*c) for c in cells]
    assert clone.as_dict() == plan.as_dict()


def test_dropout_after_contract():
    plan = FaultPlan(seed=5, dropout_rate=1.0)
    assert plan.dropout_after("p-1", 1) is None  # single task: no mid-session point
    for pid in ("p-1", "p-2", "p-3"):
        point = plan.dropout_after(pid, 6)
        assert point is not None and 1 <= point <= 5
        assert plan.dropout_after(pid, 6) == point  # deterministic
    assert FaultPlan(seed=5).dropout_after("p-1", 6) is None


# -- retry / backoff --------------------------------------------------------------


def test_backoff_is_deterministic_exponential_and_capped():
    plan = FaultPlan(seed=11)
    policy = RetryPolicy(base_delay_seconds=0.1, multiplier=2.0,
                         max_delay_seconds=0.5, jitter_fraction=0.1)
    delays = [policy.backoff_delay(plan, "capture:site-000", a) for a in range(5)]
    again = [policy.backoff_delay(plan, "capture:site-000", a) for a in range(5)]
    assert delays == again
    for attempt, delay in enumerate(delays):
        raw = min(0.1 * 2.0 ** attempt, 0.5)
        assert raw * 0.9 <= delay <= raw * 1.1
    # Other labels jitter differently (but stay deterministic).
    other = [policy.backoff_delay(plan, "capture:site-001", a) for a in range(5)]
    assert other != delays


def test_backoff_without_jitter_is_exact():
    policy = RetryPolicy(base_delay_seconds=0.05, multiplier=3.0,
                         max_delay_seconds=10.0, jitter_fraction=0.0)
    assert policy.backoff_delay(NO_FAULTS, "x", 0) == 0.05
    assert policy.backoff_delay(NO_FAULTS, "x", 2) == pytest.approx(0.45)


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter_fraction=1.0)
    with pytest.raises(ConfigurationError):
        ResiliencePolicy(capture_timeout_seconds=0.0)
    with pytest.raises(ConfigurationError):
        ResiliencePolicy(breaker_threshold=0)


# -- circuit breaker --------------------------------------------------------------


def test_breaker_opens_after_threshold_consecutive_failures():
    breaker = CircuitBreaker(threshold=2)
    assert breaker.allow("site-a")
    assert breaker.record_failure("site-a") is False
    breaker.record_success("site-a")  # resets the consecutive count
    assert breaker.record_failure("site-a") is False
    assert breaker.record_failure("site-a") is True  # opens exactly once
    assert breaker.record_failure("site-a") is False
    assert not breaker.allow("site-a") and breaker.is_open("site-a")
    assert breaker.quarantined == ("site-a",)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(threshold=0)


# -- the injector -----------------------------------------------------------------


def test_injector_passthrough_with_no_faults():
    injector = FaultInjector(NO_FAULTS)
    assert injector.run_capture("site-000", lambda: "captured") == "captured"
    assert injector.counters.total_injected == 0
    report = injector.report()
    assert report.quarantined_sites == () and report.counters["total_injected"] == 0


def test_injector_exhaustion_quarantines_and_opens_circuit():
    plan = FaultPlan(seed=1, capture_failure_rate=1.0)
    injector = FaultInjector(plan, ResiliencePolicy(retry=RetryPolicy(max_attempts=2)))
    with pytest.raises(RetryExhaustedError) as excinfo:
        injector.run_capture("site-000", lambda: "never")
    assert excinfo.value.attempts == 2
    assert injector.counters.capture_exhausted == 1
    assert injector.counters.quarantined_sites == ["site-000"]
    with pytest.raises(CircuitOpenError):
        injector.run_capture("site-000", lambda: "still never")


def test_injector_absorbs_transient_capture_faults():
    plan = FaultPlan(seed=9, capture_failure_rate=0.5, capture_stall_rate=0.2)
    # Find a site whose first attempt faults but a later attempt succeeds.
    flaky = next(
        s for s in (f"site-{i:03d}" for i in range(200))
        if (plan.fires(BOUNDARY_CAPTURE, s, 0) or plan.fires(BOUNDARY_STALL, s, 0))
        and not all(plan.fires(BOUNDARY_CAPTURE, s, a) or plan.fires(BOUNDARY_STALL, s, a)
                    for a in range(3))
    )
    injector = FaultInjector(plan)
    assert injector.run_capture(flaky, lambda: "recovered") == "recovered"
    assert injector.counters.capture_retries >= 1
    assert injector.counters.backoff_seconds_total > 0.0
    assert injector.counters.quarantined_sites == []


def test_injector_torn_write_exhaustion_leaves_debris(tmp_path):
    plan = FaultPlan(seed=1, torn_write_rate=1.0)
    injector = FaultInjector(plan)
    target = tmp_path / "record.json"
    data = b'{"payload": "0123456789"}'
    with pytest.raises(RetryExhaustedError):
        injector.run_warehouse_write("record:abc", target, data)
    assert not target.exists()
    debris = tmp_path / "record.json.tmp"
    assert debris.exists() and debris.read_bytes() == data[: len(data) // 2]
    assert injector.counters.torn_writes_injected == injector.policy.retry.max_attempts


def test_injector_absorbed_torn_write_lands_atomically(tmp_path):
    plan = FaultPlan(seed=13, torn_write_rate=0.5)
    key = next(
        k for k in (f"record:{i}" for i in range(200))
        if plan.fires(BOUNDARY_WAREHOUSE, k, 0) and not plan.fires(BOUNDARY_WAREHOUSE, k, 1)
    )
    injector = FaultInjector(plan)
    target = tmp_path / "record.json"
    data = b'{"payload": "0123456789"}'
    injector.run_warehouse_write(key, target, data)
    assert target.read_bytes() == data
    assert not (tmp_path / "record.json.tmp").exists()  # retry consumed the debris
    assert injector.counters.torn_writes_injected == 1
    assert injector.counters.warehouse_write_retries == 1


# -- checkpoint store -------------------------------------------------------------


def test_checkpoint_round_trip_and_completed_count(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt", {"campaign": "x", "seed": 1})
    store.save_chunk(0, ["r0", "r1"])
    store.save_chunk(1, ["r2"])
    assert store.has_chunk(0) and not store.has_chunk(2)
    assert store.load_chunk(1) == ["r2"]
    assert store.completed_chunks() == 2
    # A new store over the same directory resumes the same chunks.
    resumed = CheckpointStore(tmp_path / "ckpt", {"campaign": "x", "seed": 1})
    assert resumed.completed_chunks() == 2


def test_checkpoint_rejects_foreign_fingerprint(tmp_path):
    CheckpointStore(tmp_path / "ckpt", {"campaign": "x", "seed": 1})
    with pytest.raises(CheckpointError, match="different campaign"):
        CheckpointStore(tmp_path / "ckpt", {"campaign": "x", "seed": 2})


def test_checkpoint_rejects_unreadable_state(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt", {"campaign": "x"})
    with pytest.raises(CheckpointError, match="missing"):
        store.load_chunk(5)
    store._chunk_path(0).write_bytes(b"not a pickle")
    with pytest.raises(CheckpointError, match="unreadable"):
        store.load_chunk(0)
    (tmp_path / "ckpt" / "manifest.json").write_text(
        json.dumps({"format": "something-else"}), encoding="utf-8"
    )
    with pytest.raises(CheckpointError, match="format"):
        CheckpointStore(tmp_path / "ckpt", {"campaign": "x"})


# -- campaign-level integration ---------------------------------------------------


def test_fault_free_campaign_has_no_resilience_report():
    result = _small_campaign()
    assert result.resilience is None
    assert result.campaign.resilience is None


def test_faulted_campaign_degrades_gracefully_and_reports():
    plan = FaultPlan(seed=2016, capture_failure_rate=0.4, capture_stall_rate=0.25,
                     dropout_rate=0.25)
    result = _small_campaign(sites=5, participants=16, fault_plan=plan)
    resilience = result.resilience
    assert resilience is not None
    assert resilience.fault_plan == plan.as_dict()
    # Quarantined sites are excluded from the analysis, not fatal.
    assert resilience.quarantined_sites
    assert not set(resilience.quarantined_sites) & set(result.uplt_by_site)
    assert len(result.uplt_by_site) + len(resilience.quarantined_sites) == 5
    # Dropouts completed fewer tasks than assigned, and stayed in the data.
    assert resilience.dropouts
    for pid, info in resilience.dropouts.items():
        assert 1 <= info["completed"] < info["assigned"]
        assert result.campaign.telemetry[pid].videos_assigned == info["completed"]
    # The provenance subset carries no execution counters.
    assert set(resilience.provenance_dict()) == {
        "fault_plan", "quarantined_sites", "dropouts",
    }


def test_faulted_campaign_is_deterministic():
    plan = FaultPlan(seed=2016, capture_failure_rate=0.4, dropout_rate=0.25)
    first = _small_campaign(sites=5, participants=16, fault_plan=plan)
    second = _small_campaign(sites=5, participants=16, fault_plan=plan)
    assert first.uplt_by_site == second.uplt_by_site
    assert first.campaign.table1_row == second.campaign.table1_row
    assert first.resilience.quarantined_sites == second.resilience.quarantined_sites
    assert first.resilience.dropouts == second.resilience.dropouts
    assert first.resilience.counters == second.resilience.counters


def test_fault_plan_scheme_must_match_campaign_scheme():
    from repro.errors import RNGSchemeMismatchError

    plan = FaultPlan(seed=2016, rng_scheme=SCHEME_SPLITMIX64_V2, dropout_rate=0.1)
    with pytest.raises(RNGSchemeMismatchError):
        _small_campaign(rng_scheme=SCHEME_SHA256_V1, fault_plan=plan)


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_kill_and_resume_record_id_is_byte_identical(tmp_path, scheme):
    plan = FaultPlan(seed=2016, rng_scheme=scheme, capture_failure_rate=0.3,
                     dropout_rate=0.25, torn_write_rate=0.3)
    kwargs = dict(sites=4, participants=12, rng_scheme=scheme, fault_plan=plan,
                  checkpoint_chunk_size=3)

    warehouse_a = ResultsWarehouse(tmp_path / "a")
    uninterrupted = _small_campaign(
        checkpoint_dir=tmp_path / "ckpt-a", warehouse=warehouse_a, **kwargs
    )
    record_a = warehouse_a.records()[0]

    warehouse_b = ResultsWarehouse(tmp_path / "b")
    with pytest.raises(CampaignInterrupted) as excinfo:
        _small_campaign(checkpoint_dir=tmp_path / "ckpt-b", warehouse=warehouse_b,
                        stop_after_chunks=1, **kwargs)
    assert excinfo.value.completed_chunks == 1
    assert excinfo.value.total_chunks > 1
    assert len(warehouse_b) == 0  # the kill came before ingest

    resumed = _small_campaign(
        checkpoint_dir=tmp_path / "ckpt-b", warehouse=warehouse_b, **kwargs
    )
    record_b = warehouse_b.records()[0]
    assert record_b.record_id == record_a.record_id
    assert resumed.uplt_by_site == uninterrupted.uplt_by_site
    assert warehouse_a.fsck().clean and warehouse_b.fsck().clean


def test_resume_with_changed_workload_is_refused(tmp_path):
    plan = FaultPlan(seed=2016, dropout_rate=0.2)
    _small_campaign(sites=3, participants=10, fault_plan=plan,
                    checkpoint_dir=tmp_path / "ckpt", checkpoint_chunk_size=4)
    with pytest.raises(CheckpointError, match="different campaign"):
        _small_campaign(sites=3, participants=10, seed=2017, fault_plan=plan,
                        checkpoint_dir=tmp_path / "ckpt", checkpoint_chunk_size=4)


# -- warehouse crash safety -------------------------------------------------------


@pytest.fixture(scope="module")
def stored_campaign(tmp_path_factory):
    """A warehouse with one ingested record (module-scoped, copied per test)."""
    root = tmp_path_factory.mktemp("warehouse-seed")
    warehouse = ResultsWarehouse(root / "wh")
    result = _small_campaign(warehouse=warehouse)
    return root / "wh", warehouse.records()[0].record_id, result


@pytest.fixture()
def dirty_warehouse(stored_campaign, tmp_path):
    """A throwaway copy of the stored warehouse for destructive tests."""
    import shutil

    source, record_id, _result = stored_campaign
    root = tmp_path / "wh"
    shutil.copytree(source, root)
    return ResultsWarehouse(root), record_id


def test_fsck_on_consistent_store_is_clean(dirty_warehouse):
    warehouse, _record_id = dirty_warehouse
    report = warehouse.fsck()
    assert report.clean and report.checked == 1 and report.index_ok
    assert report.as_dict()["clean"] is True


def test_corruption_error_carries_offending_path(dirty_warehouse):
    warehouse, record_id = dirty_warehouse
    record = warehouse.get(record_id)
    record.path.write_text("{}", encoding="utf-8")
    fresh = ResultsWarehouse(warehouse.root)
    with pytest.raises(WarehouseCorruptionError) as excinfo:
        fresh.get(record_id).load()
    assert Path(excinfo.value.path) == record.path


def test_fsck_detects_and_repairs_corrupt_record(dirty_warehouse):
    warehouse, record_id = dirty_warehouse
    path = warehouse.get(record_id).path
    path.write_bytes(path.read_bytes()[:100])  # torn mid-file
    report = warehouse.fsck()
    assert not report.clean
    assert report.corrupt == [str(path)] and report.missing == [record_id]
    repaired = warehouse.fsck(repair=True)
    assert repaired.corrupt
    # Corrupt files are quarantined (never deleted) and the index rebuilt.
    assert (warehouse.root / "quarantine" / path.name).exists()
    after = warehouse.fsck()
    assert after.clean and len(warehouse) == 0


def test_fsck_detects_and_repairs_unindexed_record_and_debris(dirty_warehouse):
    warehouse, record_id = dirty_warehouse
    (warehouse.root / "index.json").unlink()
    (warehouse.root / "records" / "stale.json.tmp").write_bytes(b"half a rec")
    report = warehouse.fsck()
    assert not report.clean
    assert report.unindexed == [record_id]
    assert report.tmp_debris and report.tmp_debris[0].endswith("stale.json.tmp")
    warehouse.fsck(repair=True)
    after = ResultsWarehouse(warehouse.root)
    assert after.fsck().clean
    assert after.get(record_id).load()["campaign_id"] == "final-plt-timeline"


def test_fsck_flags_unreadable_index(dirty_warehouse):
    warehouse, _record_id = dirty_warehouse
    (warehouse.root / "index.json").write_text("not json", encoding="utf-8")
    with pytest.raises(WarehouseCorruptionError, match="fsck"):
        ResultsWarehouse(warehouse.root).records()
    report = warehouse.fsck()
    assert not report.index_ok and not report.clean
    warehouse.fsck(repair=True)
    assert warehouse.fsck().clean


def test_warehouse_absorbs_torn_writes_and_stays_consistent(tmp_path, stored_campaign):
    _source, record_id, result = stored_campaign
    # The ingest writes two files (the record, then the one-entry index);
    # pick a plan seed where at least one attempt tears but neither write
    # exhausts its retries — chosen by construction, so the test is stable.
    keys = (f"record:{record_id}", "index:1")
    plan = next(
        candidate
        for candidate in (FaultPlan(seed=s, torn_write_rate=0.45) for s in range(1000))
        if any(candidate.fires(BOUNDARY_WAREHOUSE, k, 0) for k in keys)
        and not any(
            all(candidate.fires(BOUNDARY_WAREHOUSE, k, a) for a in range(3)) for k in keys
        )
    )
    warehouse = ResultsWarehouse(tmp_path / "chaos-wh", injector=FaultInjector(plan))
    record = warehouse.ingest(result)
    assert warehouse.injector.counters.torn_writes_injected >= 1
    reloaded = ResultsWarehouse(tmp_path / "chaos-wh").get(record.record_id)
    assert reloaded.load()["campaign_id"] == "final-plt-timeline"
    assert warehouse.fsck().clean
