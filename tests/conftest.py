"""Shared fixtures for the test suite.

Heavier artefacts (captured videos, small campaign runs) are session-scoped
so the suite stays fast while still exercising the full pipeline.
"""

from __future__ import annotations

import pytest

from repro.browser.browser import Browser
from repro.browser.preferences import BrowserPreferences
from repro.capture.webpeg import CaptureSettings, Webpeg
from repro.core.campaign import CampaignConfig, CampaignRunner
from repro.core.experiment import ABExperiment, TimelineExperiment, build_ab_pairs
from repro.rng import SeededRNG
from repro.web.corpus import CorpusGenerator

TEST_SEED = 77


@pytest.fixture(scope="session")
def corpus():
    """A deterministic corpus generator."""
    return CorpusGenerator(seed=TEST_SEED)


@pytest.fixture(scope="session")
def page(corpus):
    """One HTTP/2-capable page with ads."""
    return corpus.generate_page("site-000", supports_http2=True, displays_ads=True)


@pytest.fixture(scope="session")
def simple_page(corpus):
    """One HTTP/2-capable page without ads."""
    return corpus.generate_page("site-noads", supports_http2=True, displays_ads=False)


@pytest.fixture(scope="session")
def pages(corpus):
    """A small corpus of five pages."""
    return corpus.http2_sample(5)


@pytest.fixture(scope="session")
def load_result(page):
    """One HTTP/2 browser load of the ad page."""
    browser = Browser(preferences=BrowserPreferences(protocol="h2"), network_profile="cable-intl",
                      seed=TEST_SEED)
    return browser.load(page)


@pytest.fixture(scope="session")
def h1_load_result(page):
    """One HTTP/1.1 browser load of the ad page."""
    browser = Browser(preferences=BrowserPreferences(protocol="http/1.1"), network_profile="cable-intl",
                      seed=TEST_SEED)
    return browser.load(page)


@pytest.fixture(scope="session")
def capture_settings():
    """Fast capture settings for tests."""
    return CaptureSettings(loads_per_site=2, network_profile="cable-intl", record_after_onload=2.0)


@pytest.fixture(scope="session")
def video(page, capture_settings):
    """One captured video of the ad page."""
    tool = Webpeg(settings=capture_settings, seed=TEST_SEED)
    return tool.capture(page, configuration="h2").video


@pytest.fixture(scope="session")
def video_pair(pages, capture_settings):
    """HTTP/1.1 and HTTP/2 captures of the small corpus, keyed by site."""
    from repro.capture.webpeg import capture_protocol_pair

    h1, h2 = {}, {}
    for p in pages:
        reports = capture_protocol_pair(p, settings=capture_settings, seed=TEST_SEED)
        h1[p.site_id] = reports["h1"].video
        h2[p.site_id] = reports["h2"].video
    return h1, h2


@pytest.fixture(scope="session")
def timeline_experiment(pages, capture_settings):
    """A timeline experiment over the small corpus."""
    tool = Webpeg(settings=capture_settings, seed=TEST_SEED)
    videos = [tool.capture(p, configuration="h2").video for p in pages]
    return TimelineExperiment(experiment_id="test-timeline", videos=videos)


@pytest.fixture(scope="session")
def ab_experiment(video_pair):
    """An A/B experiment over the small corpus."""
    h1, h2 = video_pair
    pairs = build_ab_pairs(h1, h2, label_a="h1", label_b="h2", rng=SeededRNG(TEST_SEED))
    return ABExperiment(experiment_id="test-ab", pairs=pairs)


@pytest.fixture(scope="session")
def timeline_campaign(timeline_experiment):
    """A small paid timeline campaign run end-to-end."""
    config = CampaignConfig(campaign_id="test-timeline-campaign", participant_count=40, seed=TEST_SEED)
    return CampaignRunner(config).run_timeline(timeline_experiment)


@pytest.fixture(scope="session")
def ab_campaign(ab_experiment):
    """A small paid A/B campaign run end-to-end."""
    config = CampaignConfig(campaign_id="test-ab-campaign", participant_count=40, seed=TEST_SEED)
    return CampaignRunner(config).run_ab(ab_experiment)


@pytest.fixture()
def rng():
    """A fresh seeded RNG per test."""
    return SeededRNG(TEST_SEED)
