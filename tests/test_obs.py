"""Observability-layer tests: trace determinism, metrics, exporters, timers.

Tier-1 covers the span/metrics/export units, the perf-timer contracts, and
the small-scale determinism contracts (digest identical across repeats,
across serial/streaming execution, and per RNG scheme; traced outputs
byte-identical to untraced).  The pooled-execution digest equality, the
bench-scale traced-vs-untraced sweep over every scheme, and the measured
overhead bounds (disabled <= 3%, enabled <= 15%) are tier-2.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.capture.webpeg import DEFAULT_CAPTURE_CACHE
from repro.errors import ConfigurationError, StorageError
from repro.experiments.plt_campaign import run_plt_campaign, run_plt_campaign_streaming
from repro.obs import NULL_OBSERVER, MetricsRegistry, NullObserver, Observer, resolve_obs
from repro.obs.export import (
    chrome_trace_events,
    diff_trace_documents,
    read_trace_jsonl,
    summarize_trace,
    trace_document,
    write_trace_jsonl,
)
from repro.perf.timers import PerfReport
from repro.rng import RNG_SCHEMES

pytestmark = pytest.mark.obs

SMALL = dict(sites=3, participants=8, loads_per_site=2)


@pytest.fixture(autouse=True)
def _unpinned_capture_cache():
    DEFAULT_CAPTURE_CACHE.clear()
    yield
    DEFAULT_CAPTURE_CACHE.clear()


# -- perf timer contracts (the formerly silent failure modes) -------------------


def test_stage_timer_double_start_raises():
    report = PerfReport()
    timer = report.stage("capture").start()
    with pytest.raises(ConfigurationError, match="already running"):
        timer.start()
    timer.finish()


def test_stage_timer_context_manager_still_single_starts():
    report = PerfReport()
    timer = report.stage("capture")
    with timer:
        with pytest.raises(ConfigurationError, match="already running"):
            timer.start()
    # Stopped cleanly on exit: a fresh start/finish accumulates as usual.
    timer.start()
    timer.finish(events=2)
    assert report.as_dict()["capture"]["events"] == 2


def test_perf_report_duplicate_stage_raises():
    report = PerfReport()
    report.record("campaign", 1.0, events=10)
    with pytest.raises(ConfigurationError, match="already recorded"):
        report.record("campaign", 2.0, events=5)


def test_perf_report_accumulate_sums_seconds_and_events():
    report = PerfReport()
    report.record("campaign", 1.0, events=10)
    report.record("campaign", 2.0, events=5, accumulate=True)
    stage = report.as_dict()["campaign"]
    assert stage["seconds"] == 3.0
    assert stage["events"] == 15
    assert stage["per_unit"] == round(3.0 / 15, 9)


# -- trace recorder -------------------------------------------------------------


def test_span_hierarchy_and_det_ids():
    obs = Observer()
    with obs.span("root", deterministic=True, kind="plt"):
        with obs.span("wall", deterministic=False):
            obs.record("leaf", value=3)
    spans = obs.trace.spans
    assert [s.name for s in spans] == ["root", "wall", "leaf"]
    root, wall, leaf = spans
    assert root.det_id == 1 and root.det_parent_id is None
    assert wall.det_id is None and wall.parent_id == root.span_id
    # The deterministic parent skips over the non-deterministic span.
    assert leaf.det_id == 2 and leaf.det_parent_id == root.det_id


def test_digest_raises_while_spans_open():
    obs = Observer()
    span = obs.span("root", deterministic=True).__enter__()
    with pytest.raises(ConfigurationError, match="root"):
        obs.trace_digest()
    span.__exit__(None, None, None)
    assert obs.trace_digest()


def test_spans_must_close_in_stack_order():
    obs = Observer()
    outer = obs.span("outer", deterministic=True).__enter__()
    obs.span("inner", deterministic=True).__enter__()
    with pytest.raises(ConfigurationError, match="out of order"):
        outer.__exit__(None, None, None)


def test_closed_span_rejects_new_attrs():
    obs = Observer()
    with obs.span("root", deterministic=True) as span:
        span.set(extra=1)
    with pytest.raises(ConfigurationError):
        span.set(late=2)


def test_deterministic_floats_become_reprs():
    obs = Observer()
    with obs.span("root", deterministic=True, onload=1.25, nested={"x": 0.1}):
        pass
    attrs = obs.trace.spans[0].attrs
    assert attrs["onload"] == repr(1.25)
    assert attrs["nested"]["x"] == repr(0.1)


def test_unsupported_attr_type_raises():
    obs = Observer()
    with pytest.raises(ConfigurationError):
        with obs.span("root", deterministic=True, bad=object()):
            pass


def test_digest_ignores_annotations_and_nondet_spans():
    def build(annotate: bool, extra_nondet: bool) -> str:
        obs = Observer()
        with obs.span("root", deterministic=True, kind="x") as span:
            if annotate:
                span.annotate(cache_hit=True)
            if extra_nondet:
                obs.record("noise", deterministic=False, n=1)
            obs.counter_add("noise.counter")  # non-deterministic metric
        return obs.trace_digest()

    assert build(False, False) == build(True, True)


# -- metrics registry -----------------------------------------------------------


def test_metrics_snapshot_shapes():
    metrics = MetricsRegistry()
    metrics.counter_add("a", 2)
    metrics.counter_add("a")
    metrics.gauge_set("g", 1.5)
    metrics.histogram_observe("h", 0.5)
    metrics.histogram_observe("h", 1.5)
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["a"] == 3
    assert snapshot["gauges"]["g"] == 1.5
    assert snapshot["histograms"]["h"]["count"] == 2
    assert snapshot["histograms"]["h"]["min"] == 0.5
    assert snapshot["histograms"]["h"]["max"] == 1.5


def test_metric_determinism_flag_cannot_flip():
    metrics = MetricsRegistry()
    metrics.counter_add("a", 1, deterministic=True)
    with pytest.raises(ConfigurationError):
        metrics.counter_add("a", 1, deterministic=False)


def test_deterministic_counters_must_be_integers():
    metrics = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        metrics.counter_add("a", 1.5, deterministic=True)


def test_deterministic_snapshot_is_the_pinned_subset():
    metrics = MetricsRegistry()
    metrics.counter_add("det", 4, deterministic=True)
    metrics.counter_add("exec", 9)
    assert metrics.deterministic_snapshot() == {"det": 4}


# -- null observer --------------------------------------------------------------


def test_null_observer_is_disabled_and_counts_ops():
    null = NullObserver()
    assert null.enabled is False
    with null.span("x", deterministic=True, a=1):
        pass
    null.record("y", b=2)
    null.counter_add("c")
    null.gauge_set("g", 1.0)
    null.histogram_observe("h", 0.5)
    assert null.ops == 5
    assert null.trace_digest() is None


def test_resolve_obs_defaults_to_shared_null():
    assert resolve_obs(None) is NULL_OBSERVER
    obs = Observer()
    assert resolve_obs(obs) is obs


# -- exporters ------------------------------------------------------------------


def _tiny_observer() -> Observer:
    obs = Observer()
    with obs.span("root", deterministic=True, kind="unit"):
        obs.record("leaf", n=1)
        obs.record("wall", deterministic=False, note="x")
    obs.counter_add("det.counter", 2, deterministic=True)
    obs.counter_add("exec.counter", 7)
    obs.histogram_observe("stage_seconds", 0.25)
    return obs


def test_jsonl_round_trip_preserves_deterministic_surface(tmp_path):
    obs = _tiny_observer()
    path = write_trace_jsonl(obs, tmp_path / "trace.jsonl", seed=2016)
    document = read_trace_jsonl(path)
    assert document["meta"]["trace_digest"] == obs.trace_digest()
    assert document["meta"]["seed"] == 2016
    assert len(document["spans"]) == 3
    assert document["deterministic_metrics"] == {"det.counter": 2}
    assert document["metrics"]["counters"]["exec.counter"] == 7


def test_read_trace_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n", encoding="utf-8")
    with pytest.raises(StorageError):
        read_trace_jsonl(bad)
    wrong = tmp_path / "wrong.jsonl"
    wrong.write_text(json.dumps({"type": "meta", "format": "other"}) + "\n",
                     encoding="utf-8")
    with pytest.raises(StorageError):
        read_trace_jsonl(wrong)


def test_chrome_export_emits_complete_and_instant_events():
    document = trace_document(_tiny_observer())
    chrome = chrome_trace_events(document)
    phases = {event["name"]: event["ph"] for event in chrome["traceEvents"]}
    assert phases["root"] == "X"  # timed via the context manager
    assert phases["leaf"] == "i"  # recorded from outputs, no wall clock
    assert chrome["otherData"]["trace_digest"] == document["meta"]["trace_digest"]


def test_summarize_and_diff():
    left = trace_document(_tiny_observer())
    right = trace_document(_tiny_observer())
    summary = summarize_trace(left)
    assert left["meta"]["trace_digest"] in summary
    assert "det.counter" in summary
    assert diff_trace_documents(left, right) == []
    other = Observer()
    with other.span("root", deterministic=True, kind="changed"):
        pass
    differences = diff_trace_documents(left, trace_document(other))
    assert any("trace_digest" in line for line in differences)


def test_obs_cli_trace_summarize_export_diff(tmp_path):
    from repro.obs.__main__ import main

    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    base = ["--sites", "2", "--participants", "6", "--loads", "2"]
    assert main(["trace", *base, "--output", str(a)]) == 0
    DEFAULT_CAPTURE_CACHE.clear()
    assert main(["trace", *base, "--output", str(b)]) == 0
    assert main(["summarize", str(a)]) == 0
    assert main(["diff", str(a), str(b)]) == 0
    chrome = tmp_path / "a.chrome.json"
    assert main(["export", str(a), "--output", str(chrome)]) == 0
    assert json.loads(chrome.read_text(encoding="utf-8"))["traceEvents"]


# -- pipeline determinism contracts ---------------------------------------------


def _traced_digest(scheme: str, streaming: bool = False, **workers) -> str:
    DEFAULT_CAPTURE_CACHE.clear()
    obs = Observer()
    fn = run_plt_campaign_streaming if streaming else run_plt_campaign
    kwargs = dict(SMALL, rng_scheme=scheme, obs=obs, **workers)
    if streaming:
        kwargs["chunk_size"] = 4
    fn(**kwargs)
    return obs.trace_digest()


@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_trace_digest_identical_across_repeats(scheme):
    assert _traced_digest(scheme) == _traced_digest(scheme)


def test_trace_digest_identical_serial_vs_streaming():
    assert _traced_digest(RNG_SCHEMES[0]) == _traced_digest(RNG_SCHEMES[0], streaming=True)


def test_trace_digests_differ_between_schemes():
    # The digest pins output-derived attributes, which differ per scheme —
    # one scheme's trace must never verify against another's golden.
    digests = {scheme: _traced_digest(scheme) for scheme in RNG_SCHEMES}
    assert len(set(digests.values())) == len(RNG_SCHEMES)


def test_traced_campaign_outputs_byte_identical_to_untraced():
    DEFAULT_CAPTURE_CACHE.clear()
    plain = run_plt_campaign(**SMALL)
    DEFAULT_CAPTURE_CACHE.clear()
    obs = Observer()
    traced = run_plt_campaign(**SMALL, obs=obs)
    assert traced.campaign.table1_row == plain.campaign.table1_row
    assert traced.uplt_by_site == plain.uplt_by_site
    assert {m: repr(v) for m, v in traced.comparison.correlations.items()} == {
        m: repr(v) for m, v in plain.comparison.correlations.items()
    }
    assert obs.trace_digest() is not None


def test_traced_warehouse_record_ids_identical_to_untraced(tmp_path):
    from repro.warehouse import ResultsWarehouse

    DEFAULT_CAPTURE_CACHE.clear()
    plain_house = ResultsWarehouse(tmp_path / "plain")
    run_plt_campaign(**SMALL, warehouse=plain_house, triage=False)
    DEFAULT_CAPTURE_CACHE.clear()
    traced_house = ResultsWarehouse(tmp_path / "traced")
    run_plt_campaign(**SMALL, warehouse=traced_house, triage=False, obs=Observer())
    assert sorted(r.record_id for r in traced_house.query()) == sorted(
        r.record_id for r in plain_house.query()
    )


@pytest.mark.goldens
@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_obs_golden_verifies(scheme):
    from repro.goldens import verify_golden

    assert verify_golden(scheme, "small", kind="obs") == []


# -- tier-2: pooled equality, bench-scale inertness, overhead bounds ------------


@pytest.mark.tier2
def test_trace_digest_identical_serial_vs_pooled():
    serial = _traced_digest(RNG_SCHEMES[0])
    pooled = _traced_digest(RNG_SCHEMES[0], capture_workers=2, session_workers=2)
    assert serial == pooled


@pytest.mark.tier2
@pytest.mark.parametrize("scheme", RNG_SCHEMES)
def test_bench_scale_traced_outputs_identical_per_scheme(scheme):
    from repro.perf.report import BENCH_SCALE

    scale = dict(sites=BENCH_SCALE["sites"], participants=BENCH_SCALE["participants"],
                 loads_per_site=BENCH_SCALE["loads"])
    DEFAULT_CAPTURE_CACHE.clear()
    plain = run_plt_campaign(rng_scheme=scheme, **scale)
    DEFAULT_CAPTURE_CACHE.clear()
    obs = Observer()
    traced = run_plt_campaign(rng_scheme=scheme, obs=obs, **scale)
    assert traced.campaign.table1_row == plain.campaign.table1_row
    assert traced.uplt_by_site == plain.uplt_by_site
    assert obs.trace_digest() is not None


@pytest.mark.tier2
def test_observer_overhead_bounds():
    """Disabled observer <= 3%, enabled observer <= 15% at bench-ish scale."""
    scale = dict(sites=20, participants=100, loads_per_site=2)

    def timed(obs_factory) -> float:
        best = float("inf")
        for _ in range(3):
            DEFAULT_CAPTURE_CACHE.clear()
            start = time.perf_counter()
            run_plt_campaign(**scale, obs=obs_factory())
            best = min(best, time.perf_counter() - start)
        return best

    baseline = timed(lambda: None)
    disabled = timed(NullObserver)
    enabled = timed(Observer)
    assert disabled <= baseline * 1.03, (
        f"disabled observer overhead {disabled / baseline - 1:.2%} exceeds 3%"
    )
    assert enabled <= baseline * 1.15, (
        f"enabled observer overhead {enabled / baseline - 1:.2%} exceeds 15%"
    )
