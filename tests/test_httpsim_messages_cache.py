"""Tests for HTTP messages and caches."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.httpsim.cache import BrowserCache
from repro.httpsim.messages import FetchRecord, HTTPRequest, HTTPResponse
from repro.web.objects import ObjectType, WebObject


@pytest.fixture()
def obj():
    return WebObject(
        object_id="o1",
        object_type=ObjectType.IMAGE,
        url="https://www.example.com/a.jpg",
        origin="www.example.com",
        size_bytes=1000,
    )


def test_request_for_object_sets_no_cache(obj):
    request = HTTPRequest.for_object(obj)
    assert request.headers["cache-control"] == "no-cache"
    assert not request.is_cacheable
    assert request.origin == "www.example.com"
    assert request.object_id == "o1"


def test_request_can_be_cacheable(obj):
    request = HTTPRequest.for_object(obj, no_cache=False)
    assert request.is_cacheable


def test_response_validation(obj):
    request = HTTPRequest.for_object(obj)
    with pytest.raises(ProtocolError):
        HTTPResponse(request=request, status=200, body_bytes=-1)
    with pytest.raises(ProtocolError):
        HTTPResponse(request=request, status=42, body_bytes=10)


def test_response_transfer_bytes(obj):
    request = HTTPRequest.for_object(obj)
    response = HTTPResponse(request=request, status=200, body_bytes=1000, header_bytes=300)
    assert response.transfer_bytes == 1300
    assert response.ok


def test_fetch_record_derived_times(obj):
    request = HTTPRequest.for_object(obj)
    response = HTTPResponse(request=request, status=200, body_bytes=1000)
    record = FetchRecord(
        request=request,
        response=response,
        discovered_at=1.0,
        queued_at=1.0,
        started_at=1.2,
        first_byte_at=1.5,
        completed_at=2.0,
    )
    assert record.queue_time == pytest.approx(0.2)
    assert record.ttfb == pytest.approx(0.3)
    assert record.download_time == pytest.approx(0.5)
    assert record.total_time == pytest.approx(1.0)


def test_cache_miss_for_no_cache_requests(obj):
    cache = BrowserCache(enabled=True)
    request = HTTPRequest.for_object(obj)
    assert cache.lookup(request) is None


def test_cache_hit_after_store(obj):
    cache = BrowserCache(enabled=True)
    request = HTTPRequest.for_object(obj, no_cache=False)
    response = HTTPResponse(request=request, status=200, body_bytes=1000)
    cache.store(response, now=0.0)
    entry = cache.lookup(request, now=10.0)
    assert entry is not None
    assert entry.body_bytes == 1000
    assert cache.hit_ratio > 0


def test_cache_staleness(obj):
    cache = BrowserCache(enabled=True, default_max_age=60.0)
    request = HTTPRequest.for_object(obj, no_cache=False)
    cache.store(HTTPResponse(request=request, status=200, body_bytes=1), now=0.0)
    assert cache.lookup(request, now=61.0) is None


def test_disabled_cache_never_hits(obj):
    cache = BrowserCache(enabled=False)
    request = HTTPRequest.for_object(obj, no_cache=False)
    cache.store(HTTPResponse(request=request, status=200, body_bytes=1), now=0.0)
    assert cache.lookup(request, now=0.0) is None
    assert cache.entry_count == 0


def test_cache_clear(obj):
    cache = BrowserCache(enabled=True)
    request = HTTPRequest.for_object(obj, no_cache=False)
    cache.store(HTTPResponse(request=request, status=200, body_bytes=1), now=0.0)
    cache.clear()
    assert cache.entry_count == 0
